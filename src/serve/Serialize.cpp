//===- Serialize.cpp - mcpta-result-v3 binary serialization ------------------===//

#include "serve/Serialize.h"

#include "clients/AliasPairs.h"
#include "clients/ReadWriteSets.h"
#include "ig/InvocationGraph.h"
#include "support/Version.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <set>

using namespace mcpta;
using namespace mcpta::serve;
namespace cf = mcpta::cfront;

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

std::string serve::optionsFingerprint(const pta::Analyzer::Options &Opts) {
  // Deliberately an explicit field list: per-run plumbing that cannot
  // change the result — Telem, Seeder, LiveStmts, and the parallel
  // engine's AnalysisThreads/Pool (byte-identical at any width, see
  // docs/PARALLEL.md) — is not identity, so cached results are shared
  // across thread counts.
  const support::AnalysisLimits &L = Opts.Limits;
  std::string FP = "fnptr=";
  FP += std::to_string(static_cast<int>(Opts.FnPtr));
  FP += ";cs=";
  FP += Opts.ContextSensitive ? "1" : "0";
  FP += ";stmtsets=";
  FP += Opts.RecordStmtSets ? "1" : "0";
  FP += ";k=";
  FP += std::to_string(Opts.SymbolicLevelLimit);
  FP += ";loopmax=";
  FP += std::to_string(Opts.MaxLoopIterations);
  FP += ";timeout=";
  FP += std::to_string(L.TimeoutMs);
  FP += ";stmtvisits=";
  FP += std::to_string(L.MaxStmtVisits);
  FP += ";locs=";
  FP += std::to_string(L.MaxLocations);
  FP += ";ignodes=";
  FP += std::to_string(L.MaxIGNodes);
  FP += ";recpasses=";
  FP += std::to_string(L.MaxRecPasses);
  return FP;
}

//===----------------------------------------------------------------------===//
// Capture
//===----------------------------------------------------------------------===//

std::map<const cf::VarDecl *, int32_t>
serve::localIndexMap(const simple::Program &Prog) {
  std::map<const cf::VarDecl *, int32_t> LocalIdx;
  for (const cf::FunctionDecl *F : Prog.unit().functions()) {
    int32_t Idx = 0;
    for (const cf::VarDecl *P : F->params())
      LocalIdx[P] = Idx++;
    if (const simple::FunctionIR *FIR = Prog.findFunction(F))
      for (const cf::VarDecl *V : FIR->Locals)
        LocalIdx[V] = Idx++;
  }
  return LocalIdx;
}

/// Qualified field spelling used in keys and in the serialized
/// FieldNames list: same-named fields of different records must not
/// collide.
static std::string qualifiedFieldName(const cf::FieldDecl *F) {
  return F->parent()->name() + "::" + F->name();
}

const std::string &StructuralKeys::key(const pta::Location *L) {
  auto It = Memo.find(L);
  if (It != Memo.end())
    return It->second;
  std::string K = rootKey(L->root());
  for (const pta::PathElem &PE : L->path()) {
    switch (PE.K) {
    case pta::PathElem::Kind::Field:
      K += ".f:" + qualifiedFieldName(PE.Field);
      break;
    case pta::PathElem::Kind::Head:
      K += "[0]";
      break;
    case pta::PathElem::Kind::Tail:
      K += "[1..]";
      break;
    }
  }
  return Memo.emplace(L, std::move(K)).first->second;
}

std::string StructuralKeys::rootKey(const pta::Entity *E) {
  switch (E->kind()) {
  case pta::Entity::Kind::Variable: {
    int32_t Idx = -1;
    if (E->owner()) {
      auto It = LocalIdx.find(E->var());
      Idx = It == LocalIdx.end() ? -1 : It->second;
    }
    return "v|" + (E->owner() ? E->owner()->name() : std::string()) + "|" +
           E->name() + "|" + std::to_string(Idx);
  }
  case pta::Entity::Kind::Retval:
    return "r|" + E->owner()->name();
  case pta::Entity::Kind::Function:
    return "f|" + E->name();
  case pta::Entity::Kind::String:
    // Name is "str$<id>"; the id is the program string-literal id.
    return "s|" + E->name().substr(4);
  case pta::Entity::Kind::Heap:
    return "h";
  case pta::Entity::Kind::Null:
    return "n";
  case pta::Entity::Kind::Symbolic:
    // Symbolic entities are interned per (frame, parent location), so
    // the parent's key plus the frame identifies them. Trailing '|'
    // keeps "y|f|p" distinct from a path extension of it.
    return "y|" + (E->owner() ? E->owner()->name() : std::string()) + "|" +
           key(E->symbolicParent()) + "|";
  }
  return "?";
}

namespace {

uint32_t parseStringEntityId(const std::string &Name) {
  // "str$<digits>" by construction (LocationTable::stringLit).
  uint32_t Id = 0;
  for (size_t I = 4; I < Name.size(); ++I)
    Id = Id * 10 + static_cast<uint32_t>(Name[I] - '0');
  return Id;
}

} // namespace

ResultSnapshot ResultSnapshot::capture(const simple::Program &Prog,
                                       const pta::Analyzer::Result &Res,
                                       std::string OptionsFingerprint) {
  ResultSnapshot S;
  S.FormatVersion = version::kResultFormatVersion;
  S.OptionsFingerprint = std::move(OptionsFingerprint);
  S.Analyzed = Res.Analyzed ? 1 : 0;
  S.NumStmts = Prog.numStmts();

  const pta::LocationTable &Locs = *Res.Locs;

  // Frame-variable index: position in the owner's params + IR locals
  // list. Serialized so shadowed same-name locals stay distinguishable.
  std::map<const cf::VarDecl *, int32_t> LocalIdx = localIndexMap(Prog);

  // The canonical location set: everything some serialized points-to set
  // references, closed over symbolic parents (a symbolic record is only
  // reconstructible when its parent is also present). Locations the run
  // minted but no surviving set mentions are deliberately dropped — their
  // presence would leak creation-order history into the bytes.
  std::set<const pta::Location *> Referenced;
  std::vector<const pta::Location *> Work;
  auto addLoc = [&](const pta::Location *L) {
    if (Referenced.insert(L).second)
      Work.push_back(L);
  };
  auto addSet = [&](const pta::PointsToSet &PS) {
    PS.forEach(Locs, [&](const pta::Location *Src, const pta::Location *Dst,
                         pta::Def) {
      addLoc(Src);
      addLoc(Dst);
    });
  };
  if (Res.MainOut)
    addSet(*Res.MainOut);
  for (const auto &Set : Res.StmtIn)
    if (Set)
      addSet(*Set);
  if (Res.IG)
    Res.IG->forEachNode([&](const pta::IGNode *N) {
      if (N->StoredInput)
        addSet(*N->StoredInput);
      if (N->StoredOutput)
        addSet(*N->StoredOutput);
    });
  while (!Work.empty()) {
    const pta::Location *L = Work.back();
    Work.pop_back();
    if (L->root()->isSymbolic())
      addLoc(L->root()->symbolicParent());
  }

  StructuralKeys Keys(LocalIdx);
  std::vector<const pta::Location *> Canon(Referenced.begin(),
                                           Referenced.end());
  std::sort(Canon.begin(), Canon.end(),
            [&](const pta::Location *A, const pta::Location *B) {
              return Keys.key(A) < Keys.key(B);
            });
  std::map<const pta::Location *, uint32_t> CanonId;
  for (const pta::Location *L : Canon)
    CanonId.emplace(L, static_cast<uint32_t>(CanonId.size()));

  for (const pta::Location *L : Canon) {
    const pta::Entity *E = L->root();
    LocationRecord R;
    R.Id = CanonId.at(L);
    R.EntityKind = static_cast<uint8_t>(E->kind());
    R.Summary = L->isSummary() ? 1 : 0;
    R.Collapsed = E->isCollapsed() ? 1 : 0;
    R.SymbolicLevel = E->symbolicLevel();
    R.Name = L->str();
    R.Owner = E->owner() ? E->owner()->name() : "";
    R.RootName = E->name();
    if (E->kind() == pta::Entity::Kind::Variable && E->owner()) {
      auto It = LocalIdx.find(E->var());
      R.LocalIndex = It == LocalIdx.end() ? -1 : It->second;
    }
    if (E->isSymbolic())
      R.SymParent = static_cast<int32_t>(CanonId.at(E->symbolicParent()));
    if (E->kind() == pta::Entity::Kind::String)
      R.StringId = parseStringEntityId(E->name());
    for (const pta::PathElem &PE : L->path()) {
      R.PathKinds.push_back(static_cast<uint8_t>(PE.K));
      if (PE.K == pta::PathElem::Kind::Field)
        R.FieldNames.push_back(qualifiedFieldName(PE.Field));
    }
    S.Locations.push_back(std::move(R));
  }

  // Triples are remapped to canonical ids and re-sorted: forEach yields
  // live-id order, which is creation-order history.
  auto flatten = [&](const pta::PointsToSet &PS) {
    std::vector<Triple> Out;
    Out.reserve(PS.size());
    PS.forEach(Locs, [&](const pta::Location *Src, const pta::Location *Dst,
                         pta::Def D) {
      Out.push_back({CanonId.at(Src), CanonId.at(Dst),
                     D == pta::Def::D ? uint8_t(1) : uint8_t(0)});
    });
    std::sort(Out.begin(), Out.end(), [](const Triple &A, const Triple &B) {
      return A.Src != B.Src ? A.Src < B.Src : A.Dst < B.Dst;
    });
    return Out;
  };

  if (Res.MainOut) {
    S.HasMainOut = 1;
    S.MainOut = flatten(*Res.MainOut);
  }

  for (uint32_t Id = 0; Id < Res.StmtIn.size(); ++Id)
    if (Res.StmtIn[Id])
      S.StmtIn.push_back({Id, flatten(*Res.StmtIn[Id])});

  if (Res.IG) {
    std::vector<const pta::IGNode *> Preorder = Res.IG->preorder();
    std::map<const pta::IGNode *, int32_t> Index;
    for (const pta::IGNode *N : Preorder)
      Index[N] = static_cast<int32_t>(Index.size());
    for (const pta::IGNode *N : Preorder) {
      IGNodeRecord R;
      R.Function = N->function()->name();
      R.Kind = static_cast<uint8_t>(N->kind());
      R.CallSiteId = N->callSiteId();
      R.Parent = N->parent() ? Index.at(N->parent()) : -1;
      R.RecEdge = N->recEdge() ? Index.at(N->recEdge()) : -1;
      R.EvalCount = N->EvalCount;
      if (N->StoredInput) {
        R.HasInput = 1;
        R.Input = flatten(*N->StoredInput);
      }
      if (N->StoredOutput) {
        R.HasOutput = 1;
        R.Output = flatten(*N->StoredOutput);
      }
      S.IG.push_back(std::move(R));
    }
  }

  for (const support::Degradation &D : Res.Degradations)
    S.Degradations.push_back(
        {static_cast<uint8_t>(D.Kind), D.Context, D.Action});

  // Warnings are a set in v2: an incremental run re-derives them in a
  // different order (and possibly repeatedly), so emission order is
  // trajectory, not result.
  S.Warnings = Res.Warnings;
  std::sort(S.Warnings.begin(), S.Warnings.end());
  S.Warnings.erase(std::unique(S.Warnings.begin(), S.Warnings.end()),
                   S.Warnings.end());
  for (auto &[Fn, Msgs] : Res.WarningsByFn.sortedByName())
    S.WarningsByFn.emplace(Fn, std::move(Msgs));

  S.Meta = incr::computeMeta(Prog);

  if (Res.MainOut)
    for (const auto &[A, B] : clients::aliasPairs(*Res.MainOut, Locs))
      S.AliasPairs.emplace_back(A, B);

  clients::ReadWriteSets RW = clients::ReadWriteSets::compute(Prog, Res);
  for (const auto &[Fn, Names] : RW.Reads)
    S.Reads.emplace(Fn, std::vector<std::string>(Names.begin(), Names.end()));
  for (const auto &[Fn, Names] : RW.Writes)
    S.Writes.emplace(Fn, std::vector<std::string>(Names.begin(), Names.end()));

  return S;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

int64_t ResultSnapshot::locationIdByName(std::string_view Name) const {
  for (const LocationRecord &L : Locations)
    if (L.Name == Name)
      return L.Id;
  return -1;
}

std::vector<std::pair<std::string, bool>>
ResultSnapshot::pointsToTargets(std::string_view Name, int64_t StmtId) const {
  std::vector<std::pair<std::string, bool>> Out;
  int64_t Id = locationIdByName(Name);
  if (Id < 0)
    return Out;
  const std::vector<Triple> *Set = nullptr;
  if (StmtId < 0) {
    if (HasMainOut)
      Set = &MainOut;
  } else {
    for (const StmtSetRecord &R : StmtIn)
      if (R.StmtId == static_cast<uint32_t>(StmtId)) {
        Set = &R.Triples;
        break;
      }
  }
  if (!Set)
    return Out;
  for (const Triple &T : *Set)
    if (T.Src == static_cast<uint32_t>(Id) && T.Dst < Locations.size())
      Out.emplace_back(Locations[T.Dst].Name, T.Definite != 0);
  return Out;
}

bool ResultSnapshot::aliased(const std::string &A, const std::string &B) const {
  std::pair<std::string, std::string> P =
      A < B ? std::make_pair(A, B) : std::make_pair(B, A);
  return std::binary_search(AliasPairs.begin(), AliasPairs.end(), P);
}

bool ResultSnapshot::operator==(const ResultSnapshot &O) const {
  return FormatVersion == O.FormatVersion &&
         OptionsFingerprint == O.OptionsFingerprint && Analyzed == O.Analyzed &&
         NumStmts == O.NumStmts && Locations == O.Locations &&
         HasMainOut == O.HasMainOut && MainOut == O.MainOut &&
         StmtIn == O.StmtIn && IG == O.IG && Degradations == O.Degradations &&
         Warnings == O.Warnings && WarningsByFn == O.WarningsByFn &&
         Meta == O.Meta && AliasPairs == O.AliasPairs && Reads == O.Reads &&
         Writes == O.Writes;
}

//===----------------------------------------------------------------------===//
// Binary writer
//===----------------------------------------------------------------------===//

namespace {

constexpr char Magic[4] = {'M', 'C', 'P', 'T'};

class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void bytes(std::string_view S) { Buf.append(S.data(), S.size()); }

  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Interns strings in first-use order, so the emitted table (and with
/// it the whole blob) is a pure function of the snapshot contents.
class StringInterner {
public:
  uint32_t intern(const std::string &S) {
    auto [It, Inserted] = Index.emplace(S, Table.size());
    if (Inserted)
      Table.push_back(S);
    return It->second;
  }
  const std::vector<std::string> &table() const { return Table; }

private:
  std::map<std::string, uint32_t> Index;
  std::vector<std::string> Table;
};

/// v3 set encoding: id-sorted per-source runs. \p Ts is sorted by
/// (Src, Dst) — the order the flat PointsToSet representation yields —
/// so each source's pairs are contiguous and the source id is written
/// once per run instead of once per pair.
void writeTriples(ByteWriter &W, const std::vector<Triple> &Ts) {
  uint32_t NumRuns = 0;
  for (size_t I = 0; I < Ts.size(); ++NumRuns) {
    size_t J = I + 1;
    while (J < Ts.size() && Ts[J].Src == Ts[I].Src)
      ++J;
    I = J;
  }
  W.u32(NumRuns);
  for (size_t I = 0; I < Ts.size();) {
    size_t J = I + 1;
    while (J < Ts.size() && Ts[J].Src == Ts[I].Src)
      ++J;
    W.u32(Ts[I].Src);
    W.u32(static_cast<uint32_t>(J - I));
    for (size_t K = I; K < J; ++K) {
      W.u32(Ts[K].Dst);
      W.u8(Ts[K].Definite);
    }
    I = J;
  }
}

void writeStrList(ByteWriter &W, StringInterner &Strings,
                  const std::vector<std::string> &L) {
  W.u32(static_cast<uint32_t>(L.size()));
  for (const std::string &S : L)
    W.u32(Strings.intern(S));
}

void writeU32List(ByteWriter &W, const std::vector<uint32_t> &L) {
  W.u32(static_cast<uint32_t>(L.size()));
  for (uint32_t V : L)
    W.u32(V);
}

} // namespace

std::string serve::serialize(const ResultSnapshot &S) {
  StringInterner Strings;
  ByteWriter Body;

  Body.u8(S.Analyzed);
  Body.u32(S.NumStmts);

  Body.u32(static_cast<uint32_t>(S.Locations.size()));
  for (const LocationRecord &L : S.Locations) {
    Body.u32(L.Id);
    Body.u8(L.EntityKind);
    Body.u8(L.Summary);
    Body.u8(L.Collapsed);
    Body.u32(L.SymbolicLevel);
    Body.u32(Strings.intern(L.Name));
    Body.u32(Strings.intern(L.Owner));
    Body.u32(Strings.intern(L.RootName));
    Body.i32(L.LocalIndex);
    Body.i32(L.SymParent);
    Body.u32(L.StringId);
    Body.u32(static_cast<uint32_t>(L.PathKinds.size()));
    size_t FieldIdx = 0;
    for (uint8_t K : L.PathKinds) {
      Body.u8(K);
      if (K == 0)
        Body.u32(Strings.intern(L.FieldNames[FieldIdx++]));
    }
  }

  Body.u8(S.HasMainOut);
  writeTriples(Body, S.MainOut);

  Body.u32(static_cast<uint32_t>(S.StmtIn.size()));
  for (const StmtSetRecord &R : S.StmtIn) {
    Body.u32(R.StmtId);
    writeTriples(Body, R.Triples);
  }

  Body.u32(static_cast<uint32_t>(S.IG.size()));
  for (const IGNodeRecord &N : S.IG) {
    Body.u32(Strings.intern(N.Function));
    Body.u8(N.Kind);
    Body.u32(N.CallSiteId);
    Body.i32(N.Parent);
    Body.i32(N.RecEdge);
    Body.u32(N.EvalCount);
    Body.u8(N.HasInput);
    Body.u8(N.HasOutput);
    writeTriples(Body, N.Input);
    writeTriples(Body, N.Output);
  }

  Body.u32(static_cast<uint32_t>(S.Degradations.size()));
  for (const DegradationRecord &D : S.Degradations) {
    Body.u8(D.Kind);
    Body.u32(Strings.intern(D.Context));
    Body.u32(Strings.intern(D.Action));
  }

  writeStrList(Body, Strings, S.Warnings);

  Body.u32(static_cast<uint32_t>(S.WarningsByFn.size()));
  for (const auto &[Fn, Msgs] : S.WarningsByFn) {
    Body.u32(Strings.intern(Fn));
    writeStrList(Body, Strings, Msgs);
  }

  Body.u64(S.Meta.TypesFingerprint);
  Body.u64(S.Meta.GlobalInitFingerprint);
  writeU32List(Body, S.Meta.GlobalInitStringIds);
  Body.u32(static_cast<uint32_t>(S.Meta.Functions.size()));
  for (const incr::FunctionMeta &F : S.Meta.Functions) {
    Body.u32(Strings.intern(F.Name));
    Body.u8(F.Defined);
    Body.u8(F.HasIndirectCalls);
    Body.u64(F.Fingerprint);
    writeStrList(Body, Strings, F.ParamNames);
    writeStrList(Body, Strings, F.LocalNames);
    writeStrList(Body, Strings, F.CalleeNames);
    writeStrList(Body, Strings, F.GlobalRefs);
    writeU32List(Body, F.StmtIds);
    writeU32List(Body, F.CallSiteIds);
    writeU32List(Body, F.StringIds);
  }
  Body.u32(static_cast<uint32_t>(S.Meta.Globals.size()));
  for (const incr::GlobalMeta &G : S.Meta.Globals) {
    Body.u32(Strings.intern(G.Name));
    Body.u64(G.Fingerprint);
  }

  Body.u32(static_cast<uint32_t>(S.AliasPairs.size()));
  for (const auto &[A, B] : S.AliasPairs) {
    Body.u32(Strings.intern(A));
    Body.u32(Strings.intern(B));
  }

  for (const auto *M : {&S.Reads, &S.Writes}) {
    Body.u32(static_cast<uint32_t>(M->size()));
    for (const auto &[Fn, Names] : *M) {
      Body.u32(Strings.intern(Fn));
      Body.u32(static_cast<uint32_t>(Names.size()));
      for (const std::string &N : Names)
        Body.u32(Strings.intern(N));
    }
  }

  ByteWriter Out;
  Out.bytes(std::string_view(Magic, sizeof(Magic)));
  Out.u32(version::kResultFormatVersion);
  Out.u32(static_cast<uint32_t>(S.OptionsFingerprint.size()));
  Out.bytes(S.OptionsFingerprint);
  Out.u32(static_cast<uint32_t>(Strings.table().size()));
  for (const std::string &Str : Strings.table()) {
    Out.u32(static_cast<uint32_t>(Str.size()));
    Out.bytes(Str);
  }
  Out.bytes(Body.take());
  return Out.take();
}

//===----------------------------------------------------------------------===//
// Binary reader
//===----------------------------------------------------------------------===//

namespace {

/// Bounds-checked cursor over an untrusted blob. Every read either
/// succeeds or latches the error flag; reads after an error are no-ops,
/// so parse code can stay straight-line and check once per section.
class ByteReader {
public:
  explicit ByteReader(std::string_view Blob) : Blob(Blob) {}

  bool ok() const { return Err.empty(); }
  const std::string &error() const { return Err; }
  size_t remaining() const { return Blob.size() - Pos; }
  bool atEnd() const { return Pos == Blob.size(); }

  void fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg + " (at byte " + std::to_string(Pos) + ")";
  }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(Blob[Pos++]);
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Blob[Pos + I]))
           << (8 * I);
    Pos += 4;
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Blob[Pos + I]))
           << (8 * I);
    Pos += 8;
    return V;
  }
  std::string str(uint32_t Len) {
    if (!need(Len))
      return "";
    std::string S(Blob.substr(Pos, Len));
    Pos += Len;
    return S;
  }

  /// Reads an element count and validates it against the bytes left
  /// (each element occupies at least \p MinElemBytes), so corrupt
  /// counts cannot drive a multi-gigabyte allocation.
  uint32_t count(size_t MinElemBytes) {
    uint32_t N = u32();
    if (ok() && MinElemBytes && N > remaining() / MinElemBytes) {
      fail("element count " + std::to_string(N) + " exceeds blob size");
      return 0;
    }
    return N;
  }

private:
  bool need(size_t N) {
    if (!ok())
      return false;
    if (Blob.size() - Pos < N) {
      fail("truncated blob");
      return false;
    }
    return true;
  }

  std::string_view Blob;
  size_t Pos = 0;
  std::string Err;
};

/// Reads a points-to set into the snapshot's (Src, Dst)-sorted triple
/// vector. v1/v2 blobs carry flat (src, dst, definite) triples; v3
/// carries per-source runs (see writeTriples), whose sortedness the
/// reader enforces so a v3 round trip is exactly order-preserving.
bool readTriples(ByteReader &R, std::vector<Triple> &Out, size_t NumLocs,
                 bool RunFormat) {
  if (!RunFormat) {
    uint32_t N = R.count(9);
    Out.reserve(N);
    for (uint32_t I = 0; I < N && R.ok(); ++I) {
      Triple T;
      T.Src = R.u32();
      T.Dst = R.u32();
      T.Definite = R.u8();
      if (R.ok() && (T.Src >= NumLocs || T.Dst >= NumLocs || T.Definite > 1)) {
        R.fail("triple references out-of-range location id");
        return false;
      }
      Out.push_back(T);
    }
    return R.ok();
  }

  // Min run size: src id + pair count + one 5-byte pair.
  uint32_t NumRuns = R.count(13);
  int64_t PrevSrc = -1;
  for (uint32_t I = 0; I < NumRuns && R.ok(); ++I) {
    uint32_t Src = R.u32();
    uint32_t N = R.count(5);
    if (R.ok() &&
        (Src >= NumLocs || N == 0 || static_cast<int64_t>(Src) <= PrevSrc)) {
      R.fail("corrupt points-to run header");
      return false;
    }
    PrevSrc = Src;
    int64_t PrevDst = -1;
    for (uint32_t J = 0; J < N && R.ok(); ++J) {
      Triple T;
      T.Src = Src;
      T.Dst = R.u32();
      T.Definite = R.u8();
      if (R.ok() && (T.Dst >= NumLocs || T.Definite > 1 ||
                     static_cast<int64_t>(T.Dst) <= PrevDst)) {
        R.fail("corrupt points-to run");
        return false;
      }
      PrevDst = T.Dst;
      Out.push_back(T);
    }
  }
  return R.ok();
}

/// Resolves a string-table index, failing the reader on overflow.
const std::string &tableRef(ByteReader &R,
                            const std::vector<std::string> &Table,
                            uint32_t Idx) {
  static const std::string Empty;
  if (Idx >= Table.size()) {
    R.fail("string index " + std::to_string(Idx) + " out of range");
    return Empty;
  }
  return Table[Idx];
}

std::vector<std::string> readStrList(ByteReader &R,
                                     const std::vector<std::string> &Strings) {
  std::vector<std::string> Out;
  uint32_t N = R.count(4);
  Out.reserve(N);
  for (uint32_t I = 0; I < N && R.ok(); ++I)
    Out.push_back(tableRef(R, Strings, R.u32()));
  return Out;
}

std::vector<uint32_t> readU32List(ByteReader &R) {
  std::vector<uint32_t> Out;
  uint32_t N = R.count(4);
  Out.reserve(N);
  for (uint32_t I = 0; I < N && R.ok(); ++I)
    Out.push_back(R.u32());
  return Out;
}

} // namespace

bool serve::deserialize(std::string_view Blob, ResultSnapshot &Out,
                        std::string &Error) {
  Out = ResultSnapshot();
  ByteReader R(Blob);

  std::string Head = R.str(4);
  if (R.ok() && std::memcmp(Head.data(), Magic, 4) != 0)
    R.fail("bad magic (not an mcpta-result blob)");
  uint32_t Version = R.u32();
  if (R.ok() && (Version < 1 || Version > version::kResultFormatVersion))
    R.fail("unsupported format version " + std::to_string(Version) +
           " (this build reads versions 1.." +
           std::to_string(version::kResultFormatVersion) + ")");
  const bool V1 = Version == 1;
  const bool Runs = Version >= 3; // v3 set encoding: per-source runs
  Out.FormatVersion = Version;
  Out.OptionsFingerprint = R.str(R.u32());

  std::vector<std::string> Strings;
  uint32_t NumStrings = R.count(4);
  Strings.reserve(NumStrings);
  for (uint32_t I = 0; I < NumStrings && R.ok(); ++I)
    Strings.push_back(R.str(R.u32()));

  Out.Analyzed = R.u8();
  Out.NumStmts = R.u32();
  if (V1) {
    // v1 carried three run-history counters; v2 dropped them.
    R.u64();
    R.u64();
    R.u64();
  }

  uint32_t NumLocs = R.count(V1 ? 15 : 35);
  Out.Locations.reserve(NumLocs);
  for (uint32_t I = 0; I < NumLocs && R.ok(); ++I) {
    LocationRecord L;
    L.Id = R.u32();
    L.EntityKind = R.u8();
    L.Summary = R.u8();
    L.Collapsed = R.u8();
    L.SymbolicLevel = R.u32();
    L.Name = tableRef(R, Strings, R.u32());
    L.Owner = tableRef(R, Strings, R.u32());
    if (!V1) {
      L.RootName = tableRef(R, Strings, R.u32());
      L.LocalIndex = R.i32();
      L.SymParent = R.i32();
      L.StringId = R.u32();
      uint32_t NumPath = R.count(1);
      for (uint32_t J = 0; J < NumPath && R.ok(); ++J) {
        uint8_t K = R.u8();
        if (R.ok() && K > 2) {
          R.fail("location path element kind out of range");
          break;
        }
        L.PathKinds.push_back(K);
        if (K == 0)
          L.FieldNames.push_back(tableRef(R, Strings, R.u32()));
      }
      if (R.ok() &&
          (L.EntityKind > 6 || L.LocalIndex < -1 || L.SymParent < -1 ||
           (L.SymParent >= 0 &&
            static_cast<uint32_t>(L.SymParent) >= NumLocs))) {
        // SymParent may exceed the record's own id (canonical order is
        // not topological); only the range is checkable here. The
        // incremental engine's resolver cycle-guards.
        R.fail("corrupt location record");
        break;
      }
    }
    if (R.ok() && L.Id != I)
      R.fail("location ids are not dense");
    Out.Locations.push_back(std::move(L));
  }

  Out.HasMainOut = R.u8();
  if (R.ok() && Out.HasMainOut > 1)
    R.fail("corrupt MainOut flag");
  readTriples(R, Out.MainOut, Out.Locations.size(), Runs);

  uint32_t NumStmtSets = R.count(8);
  Out.StmtIn.reserve(NumStmtSets);
  for (uint32_t I = 0; I < NumStmtSets && R.ok(); ++I) {
    StmtSetRecord Rec;
    Rec.StmtId = R.u32();
    if (R.ok() && Rec.StmtId >= Out.NumStmts) {
      R.fail("statement id out of range");
      break;
    }
    readTriples(R, Rec.Triples, Out.Locations.size(), Runs);
    Out.StmtIn.push_back(std::move(Rec));
  }

  uint32_t NumIG = R.count(V1 ? 23 : 27);
  Out.IG.reserve(NumIG);
  for (uint32_t I = 0; I < NumIG && R.ok(); ++I) {
    IGNodeRecord N;
    N.Function = tableRef(R, Strings, R.u32());
    N.Kind = R.u8();
    N.CallSiteId = R.u32();
    N.Parent = R.i32();
    N.RecEdge = R.i32();
    if (!V1)
      N.EvalCount = R.u32();
    N.HasInput = R.u8();
    N.HasOutput = R.u8();
    if (R.ok() && (N.Kind > 2 || N.HasInput > 1 || N.HasOutput > 1 ||
                   N.Parent < -1 || N.RecEdge < -1 ||
                   N.Parent >= static_cast<int32_t>(I) ||
                   N.RecEdge >= static_cast<int32_t>(I))) {
      // Preorder invariant: parents and recursion targets precede their
      // referencing node.
      R.fail("corrupt invocation-graph node record");
      break;
    }
    readTriples(R, N.Input, Out.Locations.size(), Runs);
    readTriples(R, N.Output, Out.Locations.size(), Runs);
    Out.IG.push_back(std::move(N));
  }

  uint32_t NumDeg = R.count(9);
  Out.Degradations.reserve(NumDeg);
  for (uint32_t I = 0; I < NumDeg && R.ok(); ++I) {
    DegradationRecord D;
    D.Kind = R.u8();
    D.Context = tableRef(R, Strings, R.u32());
    D.Action = tableRef(R, Strings, R.u32());
    if (R.ok() && D.Kind >= support::NumLimitKinds) {
      R.fail("degradation kind out of range");
      break;
    }
    Out.Degradations.push_back(std::move(D));
  }

  Out.Warnings = readStrList(R, Strings);

  if (!V1) {
    uint32_t NumWarnFns = R.count(8);
    for (uint32_t I = 0; I < NumWarnFns && R.ok(); ++I) {
      const std::string &Fn = tableRef(R, Strings, R.u32());
      std::vector<std::string> Msgs = readStrList(R, Strings);
      if (R.ok())
        Out.WarningsByFn[Fn] = std::move(Msgs);
    }

    Out.Meta.TypesFingerprint = R.u64();
    Out.Meta.GlobalInitFingerprint = R.u64();
    Out.Meta.GlobalInitStringIds = readU32List(R);
    uint32_t NumFns = R.count(14);
    Out.Meta.Functions.reserve(NumFns);
    for (uint32_t I = 0; I < NumFns && R.ok(); ++I) {
      incr::FunctionMeta F;
      F.Name = tableRef(R, Strings, R.u32());
      F.Defined = R.u8();
      F.HasIndirectCalls = R.u8();
      if (R.ok() && (F.Defined > 1 || F.HasIndirectCalls > 1)) {
        R.fail("corrupt function-meta record");
        break;
      }
      F.Fingerprint = R.u64();
      F.ParamNames = readStrList(R, Strings);
      F.LocalNames = readStrList(R, Strings);
      F.CalleeNames = readStrList(R, Strings);
      F.GlobalRefs = readStrList(R, Strings);
      F.StmtIds = readU32List(R);
      F.CallSiteIds = readU32List(R);
      F.StringIds = readU32List(R);
      Out.Meta.Functions.push_back(std::move(F));
    }
    uint32_t NumGlobals = R.count(12);
    Out.Meta.Globals.reserve(NumGlobals);
    for (uint32_t I = 0; I < NumGlobals && R.ok(); ++I) {
      incr::GlobalMeta G;
      G.Name = tableRef(R, Strings, R.u32());
      G.Fingerprint = R.u64();
      Out.Meta.Globals.push_back(std::move(G));
    }
  }

  uint32_t NumAlias = R.count(8);
  Out.AliasPairs.reserve(NumAlias);
  for (uint32_t I = 0; I < NumAlias && R.ok(); ++I) {
    const std::string &A = tableRef(R, Strings, R.u32());
    const std::string &B = tableRef(R, Strings, R.u32());
    Out.AliasPairs.emplace_back(A, B);
  }

  for (auto *M : {&Out.Reads, &Out.Writes}) {
    uint32_t NumFns = R.count(8);
    for (uint32_t I = 0; I < NumFns && R.ok(); ++I) {
      const std::string &Fn = tableRef(R, Strings, R.u32());
      uint32_t NumNames = R.count(4);
      std::vector<std::string> Names;
      Names.reserve(NumNames);
      for (uint32_t J = 0; J < NumNames && R.ok(); ++J)
        Names.push_back(tableRef(R, Strings, R.u32()));
      if (R.ok())
        (*M)[Fn] = std::move(Names);
    }
  }

  if (R.ok() && !R.atEnd())
    R.fail("trailing bytes after result payload");

  if (!R.ok()) {
    Error = R.error();
    Out = ResultSnapshot();
    return false;
  }
  return true;
}
