//===- Type.cpp - C type representation -----------------------------------===//

#include "cfront/Type.h"

#include "cfront/AST.h"

using namespace mcpta;
using namespace mcpta::cfront;

bool Type::isVoid() const {
  const auto *B = dynCast<BuiltinType>(this);
  return B && B->builtinKind() == BuiltinType::BK::Void;
}

bool Type::isInteger() const {
  const auto *B = dynCast<BuiltinType>(this);
  if (!B)
    return false;
  switch (B->builtinKind()) {
  case BuiltinType::BK::Void:
  case BuiltinType::BK::Float:
  case BuiltinType::BK::Double:
  case BuiltinType::BK::LongDouble:
    return false;
  default:
    return true;
  }
}

bool Type::isFloating() const {
  const auto *B = dynCast<BuiltinType>(this);
  if (!B)
    return false;
  switch (B->builtinKind()) {
  case BuiltinType::BK::Float:
  case BuiltinType::BK::Double:
  case BuiltinType::BK::LongDouble:
    return true;
  default:
    return false;
  }
}

bool Type::isPointerBearing() const {
  switch (K) {
  case Kind::Builtin:
    return false;
  case Kind::Pointer:
  case Kind::Function:
    return true;
  case Kind::Array:
    return cast<ArrayType>(this)->element()->isPointerBearing();
  case Kind::Record: {
    const RecordDecl *D = cast<RecordType>(this)->decl();
    for (const FieldDecl *F : D->fields())
      if (F->type()->isPointerBearing())
        return true;
    return false;
  }
  }
  return false;
}

std::string Type::str() const {
  switch (K) {
  case Kind::Builtin:
    switch (cast<BuiltinType>(this)->builtinKind()) {
    case BuiltinType::BK::Void: return "void";
    case BuiltinType::BK::Char: return "char";
    case BuiltinType::BK::SChar: return "signed char";
    case BuiltinType::BK::UChar: return "unsigned char";
    case BuiltinType::BK::Short: return "short";
    case BuiltinType::BK::UShort: return "unsigned short";
    case BuiltinType::BK::Int: return "int";
    case BuiltinType::BK::UInt: return "unsigned int";
    case BuiltinType::BK::Long: return "long";
    case BuiltinType::BK::ULong: return "unsigned long";
    case BuiltinType::BK::LongLong: return "long long";
    case BuiltinType::BK::ULongLong: return "unsigned long long";
    case BuiltinType::BK::Float: return "float";
    case BuiltinType::BK::Double: return "double";
    case BuiltinType::BK::LongDouble: return "long double";
    }
    return "builtin";
  case Kind::Pointer:
    return cast<PointerType>(this)->pointee()->str() + "*";
  case Kind::Array: {
    const auto *A = cast<ArrayType>(this);
    std::string Sz = A->size() >= 0 ? std::to_string(A->size()) : "";
    return A->element()->str() + "[" + Sz + "]";
  }
  case Kind::Record: {
    const RecordDecl *D = cast<RecordType>(this)->decl();
    return std::string(D->isUnion() ? "union " : "struct ") + D->name();
  }
  case Kind::Function: {
    const auto *F = cast<FunctionType>(this);
    std::string S = F->returnType()->str() + "(";
    bool First = true;
    for (const Type *P : F->paramTypes()) {
      if (!First)
        S += ",";
      S += P->str();
      First = false;
    }
    if (F->isVariadic())
      S += First ? "..." : ",...";
    S += ")";
    return S;
  }
  }
  return "?";
}

TypeContext::TypeContext() {
  auto MakeBuiltin = [this](BuiltinType::BK B) {
    auto *T = new BuiltinType(B);
    Owned.emplace_back(T);
    Builtins[B] = T;
  };
  using BK = BuiltinType::BK;
  for (BK B : {BK::Void, BK::Char, BK::SChar, BK::UChar, BK::Short,
               BK::UShort, BK::Int, BK::UInt, BK::Long, BK::ULong,
               BK::LongLong, BK::ULongLong, BK::Float, BK::Double,
               BK::LongDouble})
    MakeBuiltin(B);
}

const PointerType *TypeContext::pointerTo(const Type *Pointee) {
  auto It = Pointers.find(Pointee);
  if (It != Pointers.end())
    return It->second;
  auto *T = new PointerType(Pointee);
  Owned.emplace_back(T);
  Pointers[Pointee] = T;
  return T;
}

const ArrayType *TypeContext::arrayOf(const Type *Element, long Size) {
  auto Key = std::make_pair(Element, Size);
  auto It = Arrays.find(Key);
  if (It != Arrays.end())
    return It->second;
  auto *T = new ArrayType(Element, Size);
  Owned.emplace_back(T);
  Arrays[Key] = T;
  return T;
}

const RecordType *TypeContext::recordType(RecordDecl *Decl) {
  auto It = Records.find(Decl);
  if (It != Records.end())
    return It->second;
  auto *T = new RecordType(Decl);
  Owned.emplace_back(T);
  Records[Decl] = T;
  return T;
}

const FunctionType *
TypeContext::functionType(const Type *Return,
                          std::vector<const Type *> Params, bool Variadic) {
  auto Key = std::make_tuple(Return, Params, Variadic);
  auto It = Functions.find(Key);
  if (It != Functions.end())
    return It->second;
  auto *T = new FunctionType(Return, std::move(Params), Variadic);
  Owned.emplace_back(T);
  Functions[Key] = T;
  return T;
}
