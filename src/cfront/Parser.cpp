//===- Parser.cpp - C parser ----------------------------------------------===//

#include "cfront/Parser.h"

#include "cfront/Lexer.h"

#include <cassert>

using namespace mcpta;
using namespace mcpta::cfront;

Parser::Parser(std::vector<Token> Tokens, ASTContext &Ctx,
               DiagnosticsEngine &Diags)
    : Tokens(std::move(Tokens)), Ctx(Ctx), Types(Ctx.types()), Diags(Diags) {
  assert(!this->Tokens.empty() && "token stream must end with EOF");
}

std::unique_ptr<TranslationUnit>
Parser::parseSource(const std::string &Source, ASTContext &Ctx,
                    DiagnosticsEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Ctx, Diags);
  return P.parseTranslationUnit();
}

//===----------------------------------------------------------------------===//
// Token plumbing
//===----------------------------------------------------------------------===//

bool Parser::accept(TokenKind K) {
  if (!check(K))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  Diags.error(cur().Loc, std::string("expected ") + tokenKindName(K) +
                             " in " + Context + ", found " +
                             tokenKindName(cur().Kind));
  return false;
}

Token Parser::consume() {
  Token Tok = cur();
  if (!cur().is(TokenKind::EndOfFile))
    ++Pos;
  return Tok;
}

void Parser::skipTo(TokenKind K) {
  while (!check(K) && !check(TokenKind::EndOfFile))
    consume();
}

void Parser::skipToStmtBoundary() {
  unsigned Depth = 0;
  while (!check(TokenKind::EndOfFile)) {
    if (Depth == 0 &&
        (check(TokenKind::Semi) || check(TokenKind::RBrace)))
      return;
    if (check(TokenKind::LBrace))
      ++Depth;
    else if (check(TokenKind::RBrace) && Depth > 0)
      --Depth;
    consume();
  }
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

Decl *Parser::lookup(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Ordinary.find(Name);
    if (Found != It->Ordinary.end())
      return Found->second;
  }
  return nullptr;
}

RecordDecl *Parser::lookupTag(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Tags.find(Name);
    if (Found != It->Tags.end())
      return Found->second;
  }
  return nullptr;
}

void Parser::declare(Decl *D) {
  assert(!Scopes.empty() && "no active scope");
  Scopes.back().Ordinary[D->name()] = D;
}

void Parser::declareTag(RecordDecl *D) {
  assert(!Scopes.empty() && "no active scope");
  Scopes.back().Tags[D->name()] = D;
}

bool Parser::isTypeName(const Token &Tok) const {
  if (!Tok.is(TokenKind::Identifier))
    return false;
  Decl *D = lookup(Tok.Text);
  return D && D->kind() == Decl::Kind::Typedef;
}

bool Parser::startsDeclaration() const {
  switch (cur().Kind) {
  case TokenKind::KwVoid:
  case TokenKind::KwChar:
  case TokenKind::KwShort:
  case TokenKind::KwInt:
  case TokenKind::KwLong:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
  case TokenKind::KwSigned:
  case TokenKind::KwUnsigned:
  case TokenKind::KwStruct:
  case TokenKind::KwUnion:
  case TokenKind::KwEnum:
  case TokenKind::KwTypedef:
  case TokenKind::KwExtern:
  case TokenKind::KwStatic:
  case TokenKind::KwConst:
  case TokenKind::KwVolatile:
  case TokenKind::KwRegister:
  case TokenKind::KwAuto:
    return true;
  case TokenKind::Identifier:
    return isTypeName(cur());
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Declaration specifiers
//===----------------------------------------------------------------------===//

bool Parser::parseDeclSpec(DeclSpec &DS) {
  using BK = BuiltinType::BK;
  bool SawType = false;
  bool Unsigned = false, Signed = false;
  int LongCount = 0;
  bool SawShort = false;
  const Type *Base = nullptr;
  BK Builtin = BK::Int;
  bool SawBuiltin = false;

  while (true) {
    switch (cur().Kind) {
    case TokenKind::KwTypedef:
      DS.IsTypedef = true;
      consume();
      continue;
    case TokenKind::KwExtern:
      DS.IsExtern = true;
      consume();
      continue;
    case TokenKind::KwStatic:
      DS.IsStatic = true;
      consume();
      continue;
    case TokenKind::KwConst:
    case TokenKind::KwVolatile:
    case TokenKind::KwRegister:
    case TokenKind::KwAuto:
      consume();
      continue;
    case TokenKind::KwVoid:
      consume();
      Builtin = BK::Void;
      SawBuiltin = SawType = true;
      continue;
    case TokenKind::KwChar:
      consume();
      Builtin = BK::Char;
      SawBuiltin = SawType = true;
      continue;
    case TokenKind::KwShort:
      consume();
      SawShort = true;
      SawType = true;
      continue;
    case TokenKind::KwInt:
      consume();
      if (!SawBuiltin)
        Builtin = BK::Int;
      SawBuiltin = SawType = true;
      continue;
    case TokenKind::KwLong:
      consume();
      ++LongCount;
      SawType = true;
      continue;
    case TokenKind::KwFloat:
      consume();
      Builtin = BK::Float;
      SawBuiltin = SawType = true;
      continue;
    case TokenKind::KwDouble:
      consume();
      Builtin = BK::Double;
      SawBuiltin = SawType = true;
      continue;
    case TokenKind::KwSigned:
      consume();
      Signed = true;
      SawType = true;
      continue;
    case TokenKind::KwUnsigned:
      consume();
      Unsigned = true;
      SawType = true;
      continue;
    case TokenKind::KwStruct:
    case TokenKind::KwUnion:
      Base = parseStructOrUnion();
      SawType = true;
      continue;
    case TokenKind::KwEnum:
      Base = parseEnum();
      SawType = true;
      continue;
    case TokenKind::Identifier:
      if (!SawType && !Base && isTypeName(cur())) {
        Base = static_cast<TypedefDecl *>(lookup(cur().Text))->type();
        consume();
        SawType = true;
        continue;
      }
      break;
    default:
      break;
    }
    break;
  }

  if (!SawType && !Base)
    return false;

  if (!Base) {
    if (Builtin == BK::Double && LongCount)
      Builtin = BK::LongDouble;
    else if (SawShort)
      Builtin = Unsigned ? BK::UShort : BK::Short;
    else if (LongCount >= 2)
      Builtin = Unsigned ? BK::ULongLong : BK::LongLong;
    else if (LongCount == 1)
      Builtin = Unsigned ? BK::ULong : BK::Long;
    else if (Builtin == BK::Char)
      Builtin = Unsigned ? BK::UChar : (Signed ? BK::SChar : BK::Char);
    else if (Builtin == BK::Int)
      Builtin = Unsigned ? BK::UInt : BK::Int;
    Base = Types.builtin(Builtin);
  }
  DS.Ty = Base;
  return true;
}

const Type *Parser::parseStructOrUnion() {
  bool IsUnion = cur().is(TokenKind::KwUnion);
  SourceLoc Loc = cur().Loc;
  consume(); // struct/union

  std::string Tag;
  if (check(TokenKind::Identifier))
    Tag = consume().Text;

  RecordDecl *RD = nullptr;
  if (!Tag.empty()) {
    RD = lookupTag(Tag);
    // A `{` introduces a (re)definition in the *current* scope.
    if (!RD || (check(TokenKind::LBrace) &&
                Scopes.back().Tags.find(Tag) == Scopes.back().Tags.end())) {
      RD = Ctx.create<RecordDecl>(Tag, Loc, IsUnion);
      declareTag(RD);
      Unit->addRecord(RD);
    }
  } else {
    RD = Ctx.create<RecordDecl>("anon$" + std::to_string(AnonRecordCount++),
                                Loc, IsUnion);
    Unit->addRecord(RD);
  }

  if (accept(TokenKind::LBrace)) {
    if (RD->isComplete()) {
      Diags.error(Loc, "redefinition of struct/union '" + RD->name() + "'");
      skipTo(TokenKind::RBrace);
      accept(TokenKind::RBrace);
      return Types.recordType(RD);
    }
    while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
      DeclSpec DS;
      if (!parseDeclSpec(DS)) {
        Diags.error(cur().Loc, "expected field declaration");
        skipToStmtBoundary();
        accept(TokenKind::Semi);
        continue;
      }
      do {
        Declarator D;
        if (!parseDeclarator(D, /*Abstract=*/false))
          break;
        const Type *FieldTy = applyDeclarator(D, DS.Ty);
        if (D.declaredName().empty()) {
          Diags.error(D.declaredLoc(), "expected field name");
          break;
        }
        auto *FD = Ctx.create<FieldDecl>(
            D.declaredName(), D.declaredLoc(), FieldTy, RD,
            static_cast<unsigned>(RD->fields().size()));
        RD->addField(FD);
      } while (accept(TokenKind::Comma));
      expect(TokenKind::Semi, "struct field declaration");
    }
    expect(TokenKind::RBrace, "struct definition");
    RD->setComplete();
  }
  return Types.recordType(RD);
}

const Type *Parser::parseEnum() {
  consume(); // enum
  if (check(TokenKind::Identifier))
    consume(); // tag (enums share one int type; tags are not tracked)

  if (accept(TokenKind::LBrace)) {
    long long NextValue = 0;
    while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
      if (!check(TokenKind::Identifier)) {
        Diags.error(cur().Loc, "expected enumerator name");
        skipTo(TokenKind::RBrace);
        break;
      }
      Token Name = consume();
      long long Value = NextValue;
      if (accept(TokenKind::Equal)) {
        // Enumerator initializers are restricted to integer constants and
        // previously declared enumerators.
        if (check(TokenKind::IntLiteral)) {
          Value = consume().IntValue;
        } else if (check(TokenKind::Minus) &&
                   peekTok().is(TokenKind::IntLiteral)) {
          consume();
          Value = -consume().IntValue;
        } else if (check(TokenKind::Identifier)) {
          Token Ref = consume();
          if (auto *EC = dynCastDecl<EnumConstantDecl>(lookup(Ref.Text)))
            Value = EC->value();
          else
            Diags.error(Ref.Loc, "expected constant enumerator initializer");
        } else {
          Diags.error(cur().Loc, "expected constant enumerator initializer");
        }
      }
      declare(Ctx.create<EnumConstantDecl>(Name.Text, Name.Loc, Value));
      NextValue = Value + 1;
      if (!accept(TokenKind::Comma))
        break;
    }
    expect(TokenKind::RBrace, "enum definition");
  }
  return Types.intType();
}

//===----------------------------------------------------------------------===//
// Declarators
//===----------------------------------------------------------------------===//

const std::vector<Parser::ParamInfo> *Parser::Declarator::topLevelParams()
    const {
  if (Inner)
    return nullptr;
  if (Suffixes.size() == 1 && Suffixes[0].IsFunc)
    return &Suffixes[0].Params;
  return nullptr;
}

bool Parser::Declarator::topLevelVariadic() const {
  if (Inner || Suffixes.size() != 1 || !Suffixes[0].IsFunc)
    return false;
  return Suffixes[0].Variadic;
}

bool Parser::parseDeclarator(Declarator &D, bool Abstract) {
  while (accept(TokenKind::Star)) {
    ++D.PtrCount;
    while (accept(TokenKind::KwConst) || accept(TokenKind::KwVolatile)) {
    }
  }

  if (check(TokenKind::Identifier) && !isTypeName(cur())) {
    Token Name = consume();
    D.Name = Name.Text;
    D.NameLoc = Name.Loc;
  } else if (check(TokenKind::LParen)) {
    // Distinguish a parenthesized declarator from a function suffix of an
    // abstract declarator: a declarator starts with '*', '(' or an
    // identifier that is not a type name.
    const Token &Next = peekTok();
    bool IsParenDecl =
        Next.is(TokenKind::Star) || Next.is(TokenKind::LParen) ||
        (Next.is(TokenKind::Identifier) && !isTypeName(Next));
    if (IsParenDecl) {
      consume(); // (
      D.Inner = std::make_unique<Declarator>();
      if (!parseDeclarator(*D.Inner, Abstract))
        return false;
      if (!expect(TokenKind::RParen, "parenthesized declarator"))
        return false;
    }
  } else if (!Abstract) {
    Diags.error(cur().Loc, std::string("expected declarator, found ") +
                               tokenKindName(cur().Kind));
    return false;
  }
  D.NameLoc = D.NameLoc.isValid() ? D.NameLoc : cur().Loc;

  while (true) {
    if (check(TokenKind::LBracket)) {
      consume();
      Declarator::Suffix S;
      S.IsFunc = false;
      S.ArraySize = -1;
      if (check(TokenKind::IntLiteral))
        S.ArraySize = consume().IntValue;
      else if (check(TokenKind::Identifier)) {
        Token Ref = consume();
        if (auto *EC = dynCastDecl<EnumConstantDecl>(lookup(Ref.Text)))
          S.ArraySize = EC->value();
        else
          Diags.error(Ref.Loc, "array size must be an integer constant");
      }
      expect(TokenKind::RBracket, "array declarator");
      D.Suffixes.push_back(std::move(S));
      continue;
    }
    if (check(TokenKind::LParen)) {
      consume();
      Declarator::Suffix S;
      S.IsFunc = true;
      if (!parseParamList(S))
        return false;
      D.Suffixes.push_back(std::move(S));
      continue;
    }
    break;
  }
  return true;
}

bool Parser::parseParamList(Declarator::Suffix &Suffix) {
  if (accept(TokenKind::RParen))
    return true; // K&R-style empty list: treated as ()
  if (check(TokenKind::KwVoid) && peekTok().is(TokenKind::RParen)) {
    consume();
    consume();
    return true;
  }
  while (true) {
    if (accept(TokenKind::Ellipsis)) {
      Suffix.Variadic = true;
      break;
    }
    DeclSpec DS;
    if (!parseDeclSpec(DS)) {
      Diags.error(cur().Loc, "expected parameter declaration");
      skipTo(TokenKind::RParen);
      break;
    }
    Declarator D;
    if (!parseDeclarator(D, /*Abstract=*/true))
      return false;
    ParamInfo P;
    P.Ty = applyDeclarator(D, DS.Ty);
    // Parameters of array type decay to pointers; function types decay to
    // function pointers.
    if (const auto *AT = dynCast<ArrayType>(P.Ty))
      P.Ty = Types.pointerTo(AT->element());
    else if (P.Ty->isFunction())
      P.Ty = Types.pointerTo(P.Ty);
    P.Name = D.declaredName();
    P.Loc = D.declaredLoc();
    Suffix.Params.push_back(std::move(P));
    if (!accept(TokenKind::Comma))
      break;
  }
  return expect(TokenKind::RParen, "parameter list");
}

const Type *Parser::applyDeclarator(const Declarator &D, const Type *Base) {
  const Type *T = Base;
  for (unsigned I = 0; I < D.PtrCount; ++I)
    T = Types.pointerTo(T);
  for (auto It = D.Suffixes.rbegin(); It != D.Suffixes.rend(); ++It) {
    if (It->IsFunc) {
      std::vector<const Type *> ParamTys;
      for (const ParamInfo &P : It->Params)
        ParamTys.push_back(P.Ty);
      T = Types.functionType(T, std::move(ParamTys), It->Variadic);
    } else {
      T = Types.arrayOf(T, It->ArraySize);
    }
  }
  if (D.Inner)
    return applyDeclarator(*D.Inner, T);
  return T;
}

const Type *Parser::parseTypeName() {
  DeclSpec DS;
  if (!parseDeclSpec(DS))
    return nullptr;
  Declarator D;
  if (!parseDeclarator(D, /*Abstract=*/true))
    return nullptr;
  if (!D.declaredName().empty())
    Diags.error(D.declaredLoc(), "unexpected identifier in type name");
  return applyDeclarator(D, DS.Ty);
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

std::unique_ptr<TranslationUnit> Parser::parseTranslationUnit() {
  Unit = std::make_unique<TranslationUnit>(Ctx);
  pushScope();
  while (!check(TokenKind::EndOfFile))
    parseTopLevel();
  popScope();
  return std::move(Unit);
}

void Parser::parseTopLevel() {
  if (accept(TokenKind::Semi))
    return;

  DeclSpec DS;
  if (!parseDeclSpec(DS)) {
    Diags.error(cur().Loc, std::string("expected declaration, found ") +
                               tokenKindName(cur().Kind));
    skipToStmtBoundary();
    accept(TokenKind::Semi);
    accept(TokenKind::RBrace);
    return;
  }

  // `struct S { ... };` with no declarators.
  if (accept(TokenKind::Semi))
    return;

  bool First = true;
  do {
    Declarator D;
    if (!parseDeclarator(D, /*Abstract=*/false)) {
      skipToStmtBoundary();
      accept(TokenKind::Semi);
      return;
    }
    const Type *Ty = applyDeclarator(D, DS.Ty);

    if (DS.IsTypedef) {
      declare(Ctx.create<TypedefDecl>(D.declaredName(), D.declaredLoc(), Ty));
      First = false;
      continue;
    }

    if (const auto *FnTy = dynCast<FunctionType>(Ty)) {
      // Function prototype or definition.
      FunctionDecl *FD = nullptr;
      if (Decl *Prev = lookup(D.declaredName()))
        FD = dynCastDecl<FunctionDecl>(Prev);
      if (!FD) {
        FD = Ctx.create<FunctionDecl>(D.declaredName(), D.declaredLoc(), FnTy);
        declare(FD);
        Unit->addFunction(FD);
      } else {
        FD->setType(FnTy);
      }
      if (First && check(TokenKind::LBrace)) {
        parseFunctionDefinition(DS, D, FnTy);
        return;
      }
      First = false;
      continue;
    }

    // Global variable.
    auto *VD =
        Ctx.create<VarDecl>(D.declaredName(), D.declaredLoc(), Ty,
                            VarDecl::Storage::Global);
    if (accept(TokenKind::Equal))
      VD->setInit(parseInitializer());
    declare(VD);
    if (!DS.IsExtern)
      Unit->addGlobal(VD);
    else
      Unit->addGlobal(VD); // extern globals are still named locations
    First = false;
  } while (accept(TokenKind::Comma));

  expect(TokenKind::Semi, "declaration");
}

void Parser::parseFunctionDefinition(const DeclSpec &DS, const Declarator &D,
                                     const Type *FnTy) {
  (void)DS;
  auto *FD = dynCastDecl<FunctionDecl>(lookup(D.declaredName()));
  if (!FD) {
    // The name resolves to a non-function declaration (e.g. `int x;
    // int x(void) { ... }`). Diagnose and recover with a detached
    // FunctionDecl so the body still parses instead of dying on
    // malformed input.
    Diags.error(D.declaredLoc(),
                "'" + D.declaredName() + "' redeclared as a function");
    FD = Ctx.create<FunctionDecl>(D.declaredName(), D.declaredLoc(),
                                  static_cast<const FunctionType *>(FnTy));
    Unit->addFunction(FD);
  }
  if (FD->isDefined()) {
    Diags.error(D.declaredLoc(),
                "redefinition of function '" + D.declaredName() + "'");
    skipTo(TokenKind::LBrace);
  }
  FD->setType(static_cast<const FunctionType *>(FnTy));

  pushScope();
  CurFunction = FD;

  std::vector<VarDecl *> Params;
  if (const auto *ParamInfos = D.topLevelParams()) {
    for (const ParamInfo &P : *ParamInfos) {
      std::string Name = P.Name.empty()
                             ? "$arg" + std::to_string(Params.size())
                             : P.Name;
      auto *PD = Ctx.create<VarDecl>(Name, P.Loc, P.Ty,
                                     VarDecl::Storage::Param);
      PD->setOwner(FD);
      Params.push_back(PD);
      declare(PD);
    }
  }
  FD->setParams(std::move(Params));

  CompoundStmt *Body = parseCompound();
  FD->setBody(Body);

  CurFunction = nullptr;
  popScope();
}

Expr *Parser::parseInitializer() {
  if (check(TokenKind::LBrace)) {
    SourceLoc Loc = consume().Loc;
    std::vector<Expr *> Inits;
    if (!check(TokenKind::RBrace)) {
      do {
        if (check(TokenKind::RBrace))
          break; // trailing comma
        Inits.push_back(parseInitializer());
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RBrace, "initializer list");
    return Ctx.create<InitListExpr>(std::move(Inits), Types.intType(), Loc);
  }
  return parseAssign();
}

Stmt *Parser::parseLocalDeclaration() {
  SourceLoc Loc = cur().Loc;
  DeclSpec DS;
  if (!parseDeclSpec(DS)) {
    Diags.error(cur().Loc, "expected declaration");
    skipToStmtBoundary();
    accept(TokenKind::Semi);
    return Ctx.create<NullStmt>(Loc);
  }
  if (accept(TokenKind::Semi))
    return Ctx.create<NullStmt>(Loc); // struct definition only

  std::vector<VarDecl *> Vars;
  do {
    Declarator D;
    if (!parseDeclarator(D, /*Abstract=*/false)) {
      skipToStmtBoundary();
      accept(TokenKind::Semi);
      return Ctx.create<NullStmt>(Loc);
    }
    const Type *Ty = applyDeclarator(D, DS.Ty);
    if (DS.IsTypedef) {
      declare(Ctx.create<TypedefDecl>(D.declaredName(), D.declaredLoc(), Ty));
      continue;
    }
    auto *VD = Ctx.create<VarDecl>(
        D.declaredName(), D.declaredLoc(), Ty,
        DS.IsStatic ? VarDecl::Storage::Global : VarDecl::Storage::Local);
    VD->setOwner(CurFunction);
    if (accept(TokenKind::Equal))
      VD->setInit(parseInitializer());
    declare(VD);
    if (DS.IsStatic)
      Unit->addGlobal(VD); // function-scope statics live like globals
    Vars.push_back(VD);
  } while (accept(TokenKind::Comma));
  expect(TokenKind::Semi, "declaration");
  return Ctx.create<DeclStmt>(std::move(Vars), Loc);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

CompoundStmt *Parser::parseCompound() {
  SourceLoc Loc = cur().Loc;
  expect(TokenKind::LBrace, "compound statement");
  auto *CS = Ctx.create<CompoundStmt>(Loc);
  pushScope();
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (startsDeclaration())
      CS->addStmt(parseLocalDeclaration());
    else
      CS->addStmt(parseStmt());
  }
  popScope();
  expect(TokenKind::RBrace, "compound statement");
  return CS;
}

Stmt *Parser::parseStmt() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::LBrace:
    return parseCompound();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDo();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwSwitch:
    return parseSwitch();
  case TokenKind::KwBreak:
    consume();
    expect(TokenKind::Semi, "break statement");
    return Ctx.create<BreakStmt>(Loc);
  case TokenKind::KwContinue:
    consume();
    expect(TokenKind::Semi, "continue statement");
    return Ctx.create<ContinueStmt>(Loc);
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwGoto:
    Diags.error(Loc, "goto is not supported; the McCAT structuring phase "
                     "[14] is outside the scope of this reproduction");
    skipToStmtBoundary();
    accept(TokenKind::Semi);
    return Ctx.create<NullStmt>(Loc);
  case TokenKind::Semi:
    consume();
    return Ctx.create<NullStmt>(Loc);
  default: {
    Expr *E = parseExpr();
    expect(TokenKind::Semi, "expression statement");
    return Ctx.create<ExprStmt>(E, Loc);
  }
  }
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = consume().Loc; // if
  expect(TokenKind::LParen, "if condition");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "if condition");
  Stmt *Then = parseStmt();
  Stmt *Else = nullptr;
  if (accept(TokenKind::KwElse))
    Else = parseStmt();
  return Ctx.create<IfStmt>(Cond, Then, Else, Loc);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = consume().Loc; // while
  expect(TokenKind::LParen, "while condition");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "while condition");
  Stmt *Body = parseStmt();
  return Ctx.create<WhileStmt>(Cond, Body, Loc);
}

Stmt *Parser::parseDo() {
  SourceLoc Loc = consume().Loc; // do
  Stmt *Body = parseStmt();
  expect(TokenKind::KwWhile, "do statement");
  expect(TokenKind::LParen, "do condition");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "do condition");
  expect(TokenKind::Semi, "do statement");
  return Ctx.create<DoStmt>(Body, Cond, Loc);
}

Stmt *Parser::parseFor() {
  SourceLoc Loc = consume().Loc; // for
  expect(TokenKind::LParen, "for statement");
  pushScope();
  Stmt *Init = nullptr;
  if (!accept(TokenKind::Semi)) {
    if (startsDeclaration()) {
      Init = parseLocalDeclaration();
    } else {
      Expr *E = parseExpr();
      Init = Ctx.create<ExprStmt>(E, E->loc());
      expect(TokenKind::Semi, "for initializer");
    }
  }
  Expr *Cond = nullptr;
  if (!check(TokenKind::Semi))
    Cond = parseExpr();
  expect(TokenKind::Semi, "for condition");
  Expr *Inc = nullptr;
  if (!check(TokenKind::RParen))
    Inc = parseExpr();
  expect(TokenKind::RParen, "for statement");
  Stmt *Body = parseStmt();
  popScope();
  return Ctx.create<ForStmt>(Init, Cond, Inc, Body, Loc);
}

Stmt *Parser::parseSwitch() {
  SourceLoc Loc = consume().Loc; // switch
  expect(TokenKind::LParen, "switch condition");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "switch condition");
  expect(TokenKind::LBrace, "switch body");

  pushScope();
  std::vector<SwitchCase> Cases;
  // Statements before the first label would be unreachable; reject them.
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (check(TokenKind::KwCase) || check(TokenKind::KwDefault)) {
      SwitchCase C;
      while (check(TokenKind::KwCase) || check(TokenKind::KwDefault)) {
        if (accept(TokenKind::KwCase)) {
          long long V = 0;
          if (check(TokenKind::IntLiteral)) {
            V = consume().IntValue;
          } else if (check(TokenKind::CharLiteral)) {
            V = consume().IntValue;
          } else if (check(TokenKind::Minus) &&
                     peekTok().is(TokenKind::IntLiteral)) {
            consume();
            V = -consume().IntValue;
          } else if (check(TokenKind::Identifier)) {
            Token Ref = consume();
            if (auto *EC =
                    dynCastDecl<EnumConstantDecl>(lookup(Ref.Text)))
              V = EC->value();
            else
              Diags.error(Ref.Loc, "case label must be an integer constant");
          } else {
            Diags.error(cur().Loc, "case label must be an integer constant");
          }
          C.Values.push_back(V);
        } else {
          accept(TokenKind::KwDefault);
          C.IsDefault = true;
        }
        expect(TokenKind::Colon, "case label");
      }
      while (!check(TokenKind::KwCase) && !check(TokenKind::KwDefault) &&
             !check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
        if (startsDeclaration())
          C.Body.push_back(parseLocalDeclaration());
        else
          C.Body.push_back(parseStmt());
      }
      Cases.push_back(std::move(C));
    } else {
      Diags.error(cur().Loc, "statement before first case label in switch");
      parseStmt();
    }
  }
  popScope();
  expect(TokenKind::RBrace, "switch body");
  return Ctx.create<SwitchStmt>(Cond, std::move(Cases), Loc);
}

Stmt *Parser::parseReturn() {
  SourceLoc Loc = consume().Loc; // return
  Expr *Value = nullptr;
  if (!check(TokenKind::Semi))
    Value = parseExpr();
  expect(TokenKind::Semi, "return statement");
  return Ctx.create<ReturnStmt>(Value, Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::errorExpr(SourceLoc Loc) {
  return Ctx.create<IntLiteralExpr>(0, Types.intType(), Loc);
}

const Type *Parser::decayed(const Type *Ty) {
  if (const auto *AT = dynCast<ArrayType>(Ty))
    return Types.pointerTo(AT->element());
  if (Ty->isFunction())
    return Types.pointerTo(Ty);
  return Ty;
}

const Type *Parser::usualArith(const Type *L, const Type *R) {
  L = decayed(L);
  R = decayed(R);
  if (L->isPointer())
    return L;
  if (R->isPointer())
    return R;
  if (L->isFloating())
    return L;
  if (R->isFloating())
    return R;
  return Types.intType();
}

long long Parser::computeSizeof(const Type *Ty) const {
  switch (Ty->kind()) {
  case Type::Kind::Builtin:
    switch (cast<BuiltinType>(Ty)->builtinKind()) {
    case BuiltinType::BK::Void: return 1;
    case BuiltinType::BK::Char:
    case BuiltinType::BK::SChar:
    case BuiltinType::BK::UChar: return 1;
    case BuiltinType::BK::Short:
    case BuiltinType::BK::UShort: return 2;
    case BuiltinType::BK::Int:
    case BuiltinType::BK::UInt:
    case BuiltinType::BK::Float: return 4;
    default: return 8;
    }
  case Type::Kind::Pointer:
    return 8;
  case Type::Kind::Array: {
    const auto *AT = cast<ArrayType>(Ty);
    long Size = AT->size() < 0 ? 0 : AT->size();
    return Size * computeSizeof(AT->element());
  }
  case Type::Kind::Record: {
    const RecordDecl *RD = cast<RecordType>(Ty)->decl();
    long long Total = 0;
    for (const FieldDecl *F : RD->fields()) {
      long long FS = computeSizeof(F->type());
      if (RD->isUnion())
        Total = std::max(Total, FS);
      else
        Total += FS;
    }
    return Total == 0 ? 1 : Total;
  }
  case Type::Kind::Function:
    return 8;
  }
  return 1;
}

Expr *Parser::parseExpr() {
  Expr *E = parseAssign();
  while (check(TokenKind::Comma)) {
    SourceLoc Loc = consume().Loc;
    Expr *RHS = parseAssign();
    E = Ctx.create<BinaryExpr>(BinaryOp::Comma, E, RHS, RHS->type(), Loc);
  }
  return E;
}

Expr *Parser::parseAssign() {
  Expr *LHS = parseConditional();
  AssignOp Op;
  switch (cur().Kind) {
  case TokenKind::Equal: Op = AssignOp::Assign; break;
  case TokenKind::PlusEqual: Op = AssignOp::Add; break;
  case TokenKind::MinusEqual: Op = AssignOp::Sub; break;
  case TokenKind::StarEqual: Op = AssignOp::Mul; break;
  case TokenKind::SlashEqual: Op = AssignOp::Div; break;
  case TokenKind::PercentEqual: Op = AssignOp::Rem; break;
  case TokenKind::LessLessEqual: Op = AssignOp::Shl; break;
  case TokenKind::GreaterGreaterEqual: Op = AssignOp::Shr; break;
  case TokenKind::AmpEqual: Op = AssignOp::And; break;
  case TokenKind::PipeEqual: Op = AssignOp::Or; break;
  case TokenKind::CaretEqual: Op = AssignOp::Xor; break;
  default:
    return LHS;
  }
  SourceLoc Loc = consume().Loc;
  Expr *RHS = parseAssign();
  return Ctx.create<AssignExpr>(Op, LHS, RHS, LHS->type(), Loc);
}

Expr *Parser::parseConditional() {
  Expr *Cond = parseBinary(0);
  if (!check(TokenKind::Question))
    return Cond;
  SourceLoc Loc = consume().Loc;
  Expr *Then = parseExpr();
  expect(TokenKind::Colon, "conditional expression");
  Expr *Else = parseConditional();
  return Ctx.create<ConditionalExpr>(Cond, Then, Else,
                                     decayed(Then->type()), Loc);
}

namespace {
struct BinOpInfo {
  TokenKind Tok;
  BinaryOp Op;
  int Prec;
};
} // namespace

static const BinOpInfo *binOpFor(TokenKind K) {
  static const BinOpInfo Table[] = {
      {TokenKind::PipePipe, BinaryOp::LogOr, 1},
      {TokenKind::AmpAmp, BinaryOp::LogAnd, 2},
      {TokenKind::Pipe, BinaryOp::BitOr, 3},
      {TokenKind::Caret, BinaryOp::BitXor, 4},
      {TokenKind::Amp, BinaryOp::BitAnd, 5},
      {TokenKind::EqualEqual, BinaryOp::Eq, 6},
      {TokenKind::BangEqual, BinaryOp::Ne, 6},
      {TokenKind::Less, BinaryOp::Lt, 7},
      {TokenKind::Greater, BinaryOp::Gt, 7},
      {TokenKind::LessEqual, BinaryOp::Le, 7},
      {TokenKind::GreaterEqual, BinaryOp::Ge, 7},
      {TokenKind::LessLess, BinaryOp::Shl, 8},
      {TokenKind::GreaterGreater, BinaryOp::Shr, 8},
      {TokenKind::Plus, BinaryOp::Add, 9},
      {TokenKind::Minus, BinaryOp::Sub, 9},
      {TokenKind::Star, BinaryOp::Mul, 10},
      {TokenKind::Slash, BinaryOp::Div, 10},
      {TokenKind::Percent, BinaryOp::Rem, 10},
  };
  for (const BinOpInfo &I : Table)
    if (I.Tok == K)
      return &I;
  return nullptr;
}

Expr *Parser::parseBinary(int MinPrec) {
  Expr *LHS = parseUnary();
  while (true) {
    const BinOpInfo *Info = binOpFor(cur().Kind);
    if (!Info || Info->Prec < MinPrec)
      return LHS;
    SourceLoc Loc = consume().Loc;
    Expr *RHS = parseBinary(Info->Prec + 1);
    const Type *Ty;
    switch (Info->Op) {
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::LogAnd:
    case BinaryOp::LogOr:
      Ty = Types.intType();
      break;
    case BinaryOp::Sub:
      // ptr - ptr yields an integer.
      if (decayed(LHS->type())->isPointer() &&
          decayed(RHS->type())->isPointer()) {
        Ty = Types.intType();
        break;
      }
      [[fallthrough]];
    default:
      Ty = usualArith(LHS->type(), RHS->type());
      break;
    }
    LHS = Ctx.create<BinaryExpr>(Info->Op, LHS, RHS, Ty, Loc);
  }
}

Expr *Parser::parseUnary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::Amp: {
    consume();
    Expr *Sub = parseUnary();
    return Ctx.create<UnaryExpr>(UnaryOp::AddrOf, Sub,
                                 Types.pointerTo(Sub->type()), Loc);
  }
  case TokenKind::Star: {
    consume();
    Expr *Sub = parseUnary();
    const Type *SubTy = decayed(Sub->type());
    const Type *Ty = Types.intType();
    if (const auto *PT = dynCast<PointerType>(SubTy))
      Ty = PT->pointee();
    else
      Diags.error(Loc, "cannot dereference non-pointer of type '" +
                           Sub->type()->str() + "'");
    return Ctx.create<UnaryExpr>(UnaryOp::Deref, Sub, Ty, Loc);
  }
  case TokenKind::Plus: {
    consume();
    Expr *Sub = parseUnary();
    return Ctx.create<UnaryExpr>(UnaryOp::Plus, Sub, decayed(Sub->type()),
                                 Loc);
  }
  case TokenKind::Minus: {
    consume();
    Expr *Sub = parseUnary();
    return Ctx.create<UnaryExpr>(UnaryOp::Minus, Sub, decayed(Sub->type()),
                                 Loc);
  }
  case TokenKind::Bang: {
    consume();
    Expr *Sub = parseUnary();
    return Ctx.create<UnaryExpr>(UnaryOp::Not, Sub, Types.intType(), Loc);
  }
  case TokenKind::Tilde: {
    consume();
    Expr *Sub = parseUnary();
    return Ctx.create<UnaryExpr>(UnaryOp::BitNot, Sub, Types.intType(), Loc);
  }
  case TokenKind::PlusPlus: {
    consume();
    Expr *Sub = parseUnary();
    return Ctx.create<UnaryExpr>(UnaryOp::PreInc, Sub,
                                 decayed(Sub->type()), Loc);
  }
  case TokenKind::MinusMinus: {
    consume();
    Expr *Sub = parseUnary();
    return Ctx.create<UnaryExpr>(UnaryOp::PreDec, Sub,
                                 decayed(Sub->type()), Loc);
  }
  case TokenKind::KwSizeof: {
    consume();
    long long Size = 1;
    if (check(TokenKind::LParen) &&
        (peekTok().is(TokenKind::KwVoid) || peekTok().is(TokenKind::KwChar) ||
         peekTok().is(TokenKind::KwShort) || peekTok().is(TokenKind::KwInt) ||
         peekTok().is(TokenKind::KwLong) || peekTok().is(TokenKind::KwFloat) ||
         peekTok().is(TokenKind::KwDouble) ||
         peekTok().is(TokenKind::KwSigned) ||
         peekTok().is(TokenKind::KwUnsigned) ||
         peekTok().is(TokenKind::KwStruct) ||
         peekTok().is(TokenKind::KwUnion) ||
         peekTok().is(TokenKind::KwEnum) || isTypeName(peekTok()))) {
      consume(); // (
      if (const Type *Ty = parseTypeName())
        Size = computeSizeof(Ty);
      expect(TokenKind::RParen, "sizeof");
    } else {
      Expr *Sub = parseUnary();
      Size = computeSizeof(Sub->type());
    }
    return Ctx.create<IntLiteralExpr>(Size, Types.intType(), Loc);
  }
  case TokenKind::LParen: {
    // Cast expression: '(' type-name ')' unary.
    const Token &Next = peekTok();
    bool IsCast = false;
    switch (Next.Kind) {
    case TokenKind::KwVoid:
    case TokenKind::KwChar:
    case TokenKind::KwShort:
    case TokenKind::KwInt:
    case TokenKind::KwLong:
    case TokenKind::KwFloat:
    case TokenKind::KwDouble:
    case TokenKind::KwSigned:
    case TokenKind::KwUnsigned:
    case TokenKind::KwStruct:
    case TokenKind::KwUnion:
    case TokenKind::KwEnum:
    case TokenKind::KwConst:
      IsCast = true;
      break;
    case TokenKind::Identifier:
      IsCast = isTypeName(Next);
      break;
    default:
      break;
    }
    if (IsCast) {
      consume(); // (
      const Type *Ty = parseTypeName();
      expect(TokenKind::RParen, "cast expression");
      Expr *Sub = parseUnary();
      if (!Ty)
        Ty = Types.intType();
      return Ctx.create<CastExpr>(Sub, Ty, Loc);
    }
    return parsePostfix();
  }
  default:
    return parsePostfix();
  }
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  while (true) {
    SourceLoc Loc = cur().Loc;
    if (accept(TokenKind::LParen)) {
      std::vector<Expr *> Args;
      if (!check(TokenKind::RParen)) {
        do
          Args.push_back(parseAssign());
        while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "call expression");
      const Type *CalleeTy = E->type();
      if (const auto *PT = dynCast<PointerType>(CalleeTy))
        CalleeTy = PT->pointee();
      const Type *RetTy = Types.intType();
      if (const auto *FT = dynCast<FunctionType>(CalleeTy))
        RetTy = FT->returnType();
      else
        Diags.error(Loc, "called object of type '" + E->type()->str() +
                             "' is not a function");
      E = Ctx.create<CallExpr>(E, std::move(Args), RetTy, Loc);
      continue;
    }
    if (accept(TokenKind::LBracket)) {
      Expr *Index = parseExpr();
      expect(TokenKind::RBracket, "array subscript");
      const Type *BaseTy = decayed(E->type());
      const Type *ElemTy = Types.intType();
      if (const auto *PT = dynCast<PointerType>(BaseTy))
        ElemTy = PT->pointee();
      else
        Diags.error(Loc, "subscripted value of type '" + E->type()->str() +
                             "' is not an array or pointer");
      E = Ctx.create<ArraySubscriptExpr>(E, Index, ElemTy, Loc);
      continue;
    }
    if (check(TokenKind::Dot) || check(TokenKind::Arrow)) {
      bool IsArrow = cur().is(TokenKind::Arrow);
      consume();
      if (!check(TokenKind::Identifier)) {
        Diags.error(cur().Loc, "expected member name");
        return E;
      }
      Token Member = consume();
      const Type *BaseTy = E->type();
      if (IsArrow) {
        if (const auto *PT = dynCast<PointerType>(decayed(BaseTy)))
          BaseTy = PT->pointee();
        else
          Diags.error(Loc, "'->' on non-pointer of type '" +
                               E->type()->str() + "'");
      }
      const auto *RT = dynCast<RecordType>(BaseTy);
      FieldDecl *FD = nullptr;
      if (RT)
        FD = RT->decl()->findField(Member.Text);
      if (!FD) {
        Diags.error(Member.Loc, "no member named '" + Member.Text +
                                    "' in type '" + BaseTy->str() + "'");
        return errorExpr(Member.Loc);
      }
      E = Ctx.create<MemberExpr>(E, FD, IsArrow, FD->type(), Loc);
      continue;
    }
    if (check(TokenKind::PlusPlus)) {
      consume();
      E = Ctx.create<UnaryExpr>(UnaryOp::PostInc, E, decayed(E->type()),
                                Loc);
      continue;
    }
    if (check(TokenKind::MinusMinus)) {
      consume();
      E = Ctx.create<UnaryExpr>(UnaryOp::PostDec, E, decayed(E->type()),
                                Loc);
      continue;
    }
    return E;
  }
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::IntLiteral: {
    Token Tok = consume();
    return Ctx.create<IntLiteralExpr>(Tok.IntValue, Types.intType(), Loc);
  }
  case TokenKind::CharLiteral: {
    Token Tok = consume();
    return Ctx.create<IntLiteralExpr>(Tok.IntValue, Types.charType(), Loc);
  }
  case TokenKind::FloatLiteral: {
    Token Tok = consume();
    return Ctx.create<FloatLiteralExpr>(Tok.FloatValue, Types.doubleType(),
                                        Loc);
  }
  case TokenKind::StringLiteral: {
    Token Tok = consume();
    const Type *Ty = Types.arrayOf(Types.charType(),
                                   static_cast<long>(Tok.Text.size()) + 1);
    return Ctx.create<StringLiteralExpr>(Tok.Text, Ty, Loc);
  }
  case TokenKind::KwNull: {
    consume();
    return Ctx.create<NullLiteralExpr>(
        Types.pointerTo(Types.voidType()), Loc);
  }
  case TokenKind::LParen: {
    consume();
    Expr *E = parseExpr();
    expect(TokenKind::RParen, "parenthesized expression");
    return E;
  }
  case TokenKind::Identifier: {
    Token Tok = consume();
    Decl *D = lookup(Tok.Text);
    if (!D) {
      Diags.error(Loc, "use of undeclared identifier '" + Tok.Text + "'");
      return errorExpr(Loc);
    }
    if (auto *EC = dynCastDecl<EnumConstantDecl>(D))
      return Ctx.create<IntLiteralExpr>(EC->value(), Types.intType(), Loc);
    if (auto *VD = dynCastDecl<VarDecl>(D))
      return Ctx.create<DeclRefExpr>(VD, VD->type(), Loc);
    if (auto *FD = dynCastDecl<FunctionDecl>(D))
      return Ctx.create<DeclRefExpr>(FD, FD->type(), Loc);
    Diags.error(Loc, "'" + Tok.Text + "' does not name a value");
    return errorExpr(Loc);
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokenKindName(cur().Kind));
    consume();
    return errorExpr(Loc);
  }
}
