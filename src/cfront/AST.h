//===- AST.h - C abstract syntax tree ---------------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the accepted C subset. The parser produces a fully resolved and
/// typed tree: every DeclRefExpr points at its declaration and every Expr
/// carries its Type, so later phases never do name lookup. Ownership is
/// centralized in ASTContext (bump-style: nodes live as long as the
/// context). Node classes use kind tags + classof rather than RTTI,
/// following the LLVM style.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_CFRONT_AST_H
#define MCPTA_CFRONT_AST_H

#include "cfront/Type.h"
#include "support/SourceLoc.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mcpta {
namespace cfront {

class ASTContext;
class CompoundStmt;
class Expr;
class FunctionDecl;
class RecordDecl;
class Stmt;

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// Base class of all declarations.
class Decl {
public:
  enum class Kind {
    Var,
    Field,
    Record,
    Function,
    Typedef,
    EnumConstant,
  };

  Kind kind() const { return K; }
  const std::string &name() const { return Name; }
  SourceLoc loc() const { return Loc; }
  virtual ~Decl() = default;

protected:
  Decl(Kind K, std::string Name, SourceLoc Loc)
      : K(K), Name(std::move(Name)), Loc(Loc) {}

private:
  Kind K;
  std::string Name;
  SourceLoc Loc;
};

/// LLVM-ish cast helpers over Decl kind tags.
template <typename To> To *dynCastDecl(Decl *D) {
  if (D && To::classof(D))
    return static_cast<To *>(D);
  return nullptr;
}
template <typename To> const To *dynCastDecl(const Decl *D) {
  if (D && To::classof(D))
    return static_cast<const To *>(D);
  return nullptr;
}

/// A variable: global, function-local, parameter, or a compiler temporary
/// introduced by the simplifier.
class VarDecl : public Decl {
public:
  enum class Storage { Global, Local, Param, Temp };

  VarDecl(std::string Name, SourceLoc Loc, const Type *Ty, Storage S)
      : Decl(Kind::Var, std::move(Name), Loc), Ty(Ty), S(S) {}

  const Type *type() const { return Ty; }
  Storage storage() const { return S; }
  bool isGlobal() const { return S == Storage::Global; }
  bool isParam() const { return S == Storage::Param; }

  /// Original-source initializer (null if none). Consumed by the
  /// simplifier, which turns it into explicit assignment statements.
  Expr *init() const { return Init; }
  void setInit(Expr *E) { Init = E; }

  /// The function this local/param/temp belongs to; null for globals.
  FunctionDecl *owner() const { return Owner; }
  void setOwner(FunctionDecl *F) { Owner = F; }

  static bool classof(const Decl *D) { return D->kind() == Kind::Var; }

private:
  const Type *Ty;
  Storage S;
  Expr *Init = nullptr;
  FunctionDecl *Owner = nullptr;
};

/// A struct/union member.
class FieldDecl : public Decl {
public:
  FieldDecl(std::string Name, SourceLoc Loc, const Type *Ty,
            RecordDecl *Parent, unsigned Index)
      : Decl(Kind::Field, std::move(Name), Loc), Ty(Ty), Parent(Parent),
        Index(Index) {}

  const Type *type() const { return Ty; }
  RecordDecl *parent() const { return Parent; }
  unsigned index() const { return Index; }

  static bool classof(const Decl *D) { return D->kind() == Kind::Field; }

private:
  const Type *Ty;
  RecordDecl *Parent;
  unsigned Index;
};

/// A struct or union. Unions are modeled as structs whose fields all
/// overlap; for points-to purposes each union member is a distinct
/// abstract location, which is safe because writes through one member
/// conservatively leave the others' relationships possible (see
/// Analyzer.cpp union handling).
class RecordDecl : public Decl {
public:
  RecordDecl(std::string Name, SourceLoc Loc, bool IsUnion)
      : Decl(Kind::Record, std::move(Name), Loc), IsUnion(IsUnion) {}

  bool isUnion() const { return IsUnion; }
  bool isComplete() const { return Complete; }
  void setComplete() { Complete = true; }

  const std::vector<FieldDecl *> &fields() const { return Fields; }
  void addField(FieldDecl *F) { Fields.push_back(F); }
  FieldDecl *findField(const std::string &Name) const;

  static bool classof(const Decl *D) { return D->kind() == Kind::Record; }

private:
  bool IsUnion;
  bool Complete = false;
  std::vector<FieldDecl *> Fields;
};

/// A function declaration or definition.
class FunctionDecl : public Decl {
public:
  FunctionDecl(std::string Name, SourceLoc Loc, const FunctionType *Ty)
      : Decl(Kind::Function, std::move(Name), Loc), Ty(Ty) {}

  const FunctionType *type() const { return Ty; }
  void setType(const FunctionType *T) { Ty = T; }
  const Type *returnType() const { return Ty->returnType(); }

  const std::vector<VarDecl *> &params() const { return Params; }
  void setParams(std::vector<VarDecl *> P) { Params = std::move(P); }

  CompoundStmt *body() const { return Body; }
  void setBody(CompoundStmt *B) { Body = B; }
  bool isDefined() const { return Body != nullptr; }

  /// Set when the program takes the function's address other than in a
  /// direct call (used by the address-taken call-graph baseline).
  bool isAddressTaken() const { return AddressTaken; }
  void setAddressTaken() { AddressTaken = true; }

  static bool classof(const Decl *D) { return D->kind() == Kind::Function; }

private:
  const FunctionType *Ty;
  std::vector<VarDecl *> Params;
  CompoundStmt *Body = nullptr;
  bool AddressTaken = false;
};

/// typedef name.
class TypedefDecl : public Decl {
public:
  TypedefDecl(std::string Name, SourceLoc Loc, const Type *Ty)
      : Decl(Kind::Typedef, std::move(Name), Loc), Ty(Ty) {}

  const Type *type() const { return Ty; }

  static bool classof(const Decl *D) { return D->kind() == Kind::Typedef; }

private:
  const Type *Ty;
};

/// An enumerator; behaves as an int constant.
class EnumConstantDecl : public Decl {
public:
  EnumConstantDecl(std::string Name, SourceLoc Loc, long long Value)
      : Decl(Kind::EnumConstant, std::move(Name), Loc), Value(Value) {}

  long long value() const { return Value; }

  static bool classof(const Decl *D) {
    return D->kind() == Kind::EnumConstant;
  }

private:
  long long Value;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all expressions. Every expression is typed by the parser.
class Expr {
public:
  enum class Kind {
    IntLiteral,
    FloatLiteral,
    StringLiteral,
    NullLiteral,
    DeclRef,
    Unary,
    Binary,
    Assign,
    Conditional,
    Call,
    Member,
    ArraySubscript,
    Cast,
    InitList,
  };

  Kind kind() const { return K; }
  const Type *type() const { return Ty; }
  SourceLoc loc() const { return Loc; }
  virtual ~Expr() = default;

protected:
  Expr(Kind K, const Type *Ty, SourceLoc Loc) : K(K), Ty(Ty), Loc(Loc) {}

private:
  Kind K;
  const Type *Ty;
  SourceLoc Loc;
};

template <typename To> To *dynCastExpr(Expr *E) {
  if (E && To::classof(E))
    return static_cast<To *>(E);
  return nullptr;
}
template <typename To> const To *dynCastExpr(const Expr *E) {
  if (E && To::classof(E))
    return static_cast<const To *>(E);
  return nullptr;
}
template <typename To> To *castExpr(Expr *E) {
  assert(E && To::classof(E) && "invalid expr cast");
  return static_cast<To *>(E);
}

class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(long long Value, const Type *Ty, SourceLoc Loc)
      : Expr(Kind::IntLiteral, Ty, Loc), Value(Value) {}
  long long value() const { return Value; }
  static bool classof(const Expr *E) { return E->kind() == Kind::IntLiteral; }

private:
  long long Value;
};

class FloatLiteralExpr : public Expr {
public:
  FloatLiteralExpr(double Value, const Type *Ty, SourceLoc Loc)
      : Expr(Kind::FloatLiteral, Ty, Loc), Value(Value) {}
  double value() const { return Value; }
  static bool classof(const Expr *E) {
    return E->kind() == Kind::FloatLiteral;
  }

private:
  double Value;
};

/// A string literal. The simplifier materializes one static char-array
/// entity per literal, so taking its value yields a points-to pair.
class StringLiteralExpr : public Expr {
public:
  StringLiteralExpr(std::string Value, const Type *Ty, SourceLoc Loc)
      : Expr(Kind::StringLiteral, Ty, Loc), Value(std::move(Value)) {}
  const std::string &value() const { return Value; }
  static bool classof(const Expr *E) {
    return E->kind() == Kind::StringLiteral;
  }

private:
  std::string Value;
};

/// The NULL constant (also produced for a literal 0 assigned to a
/// pointer, handled in the simplifier).
class NullLiteralExpr : public Expr {
public:
  NullLiteralExpr(const Type *Ty, SourceLoc Loc)
      : Expr(Kind::NullLiteral, Ty, Loc) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::NullLiteral;
  }
};

/// Reference to a variable, function, or enum constant.
class DeclRefExpr : public Expr {
public:
  DeclRefExpr(Decl *D, const Type *Ty, SourceLoc Loc)
      : Expr(Kind::DeclRef, Ty, Loc), D(D) {}
  Decl *decl() const { return D; }
  static bool classof(const Expr *E) { return E->kind() == Kind::DeclRef; }

private:
  Decl *D;
};

enum class UnaryOp {
  AddrOf,
  Deref,
  Plus,
  Minus,
  Not,
  BitNot,
  PreInc,
  PreDec,
  PostInc,
  PostDec,
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, Expr *Sub, const Type *Ty, SourceLoc Loc)
      : Expr(Kind::Unary, Ty, Loc), Op(Op), Sub(Sub) {}
  UnaryOp op() const { return Op; }
  Expr *sub() const { return Sub; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  Expr *Sub;
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  BitAnd,
  BitXor,
  BitOr,
  LogAnd,
  LogOr,
  Comma,
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, Expr *LHS, Expr *RHS, const Type *Ty, SourceLoc Loc)
      : Expr(Kind::Binary, Ty, Loc), Op(Op), LHS(LHS), RHS(RHS) {}
  BinaryOp op() const { return Op; }
  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

enum class AssignOp {
  Assign,
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  And,
  Or,
  Xor,
};

class AssignExpr : public Expr {
public:
  AssignExpr(AssignOp Op, Expr *LHS, Expr *RHS, const Type *Ty, SourceLoc Loc)
      : Expr(Kind::Assign, Ty, Loc), Op(Op), LHS(LHS), RHS(RHS) {}
  AssignOp op() const { return Op; }
  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Assign; }

private:
  AssignOp Op;
  Expr *LHS;
  Expr *RHS;
};

class ConditionalExpr : public Expr {
public:
  ConditionalExpr(Expr *Cond, Expr *Then, Expr *Else, const Type *Ty,
                  SourceLoc Loc)
      : Expr(Kind::Conditional, Ty, Loc), Cond(Cond), Then(Then), Else(Else) {}
  Expr *cond() const { return Cond; }
  Expr *thenExpr() const { return Then; }
  Expr *elseExpr() const { return Else; }
  static bool classof(const Expr *E) {
    return E->kind() == Kind::Conditional;
  }

private:
  Expr *Cond;
  Expr *Then;
  Expr *Else;
};

/// A call. The callee is an arbitrary expression; direct calls have a
/// DeclRefExpr to a FunctionDecl (possibly behind a Deref), indirect
/// calls go through a function-pointer-typed expression.
class CallExpr : public Expr {
public:
  CallExpr(Expr *Callee, std::vector<Expr *> Args, const Type *Ty,
           SourceLoc Loc)
      : Expr(Kind::Call, Ty, Loc), Callee(Callee), Args(std::move(Args)) {}
  Expr *callee() const { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }

  /// If this is a direct call to a named function, returns it.
  FunctionDecl *directCallee() const;

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  Expr *Callee;
  std::vector<Expr *> Args;
};

class MemberExpr : public Expr {
public:
  MemberExpr(Expr *Base, FieldDecl *Member, bool IsArrow, const Type *Ty,
             SourceLoc Loc)
      : Expr(Kind::Member, Ty, Loc), Base(Base), Member(Member),
        IsArrow(IsArrow) {}
  Expr *base() const { return Base; }
  FieldDecl *member() const { return Member; }
  bool isArrow() const { return IsArrow; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Member; }

private:
  Expr *Base;
  FieldDecl *Member;
  bool IsArrow;
};

class ArraySubscriptExpr : public Expr {
public:
  ArraySubscriptExpr(Expr *Base, Expr *Index, const Type *Ty, SourceLoc Loc)
      : Expr(Kind::ArraySubscript, Ty, Loc), Base(Base), Index(Index) {}
  Expr *base() const { return Base; }
  Expr *index() const { return Index; }
  static bool classof(const Expr *E) {
    return E->kind() == Kind::ArraySubscript;
  }

private:
  Expr *Base;
  Expr *Index;
};

class CastExpr : public Expr {
public:
  CastExpr(Expr *Sub, const Type *Ty, SourceLoc Loc)
      : Expr(Kind::Cast, Ty, Loc), Sub(Sub) {}
  Expr *sub() const { return Sub; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Cast; }

private:
  Expr *Sub;
};

/// Brace initializer for aggregates: { e0, e1, ... }.
class InitListExpr : public Expr {
public:
  InitListExpr(std::vector<Expr *> Inits, const Type *Ty, SourceLoc Loc)
      : Expr(Kind::InitList, Ty, Loc), Inits(std::move(Inits)) {}
  const std::vector<Expr *> &inits() const { return Inits; }
  static bool classof(const Expr *E) { return E->kind() == Kind::InitList; }

private:
  std::vector<Expr *> Inits;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind {
    Compound,
    Decl,
    Expr,
    If,
    While,
    Do,
    For,
    Switch,
    Break,
    Continue,
    Return,
    Null,
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }
  virtual ~Stmt() = default;

protected:
  Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

template <typename To> To *dynCastStmt(Stmt *S) {
  if (S && To::classof(S))
    return static_cast<To *>(S);
  return nullptr;
}
template <typename To> To *castStmt(Stmt *S) {
  assert(S && To::classof(S) && "invalid stmt cast");
  return static_cast<To *>(S);
}

class CompoundStmt : public Stmt {
public:
  explicit CompoundStmt(SourceLoc Loc) : Stmt(Kind::Compound, Loc) {}
  const std::vector<Stmt *> &body() const { return Body; }
  void addStmt(Stmt *S) { Body.push_back(S); }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Compound; }

private:
  std::vector<Stmt *> Body;
};

/// Declaration of one or more local variables.
class DeclStmt : public Stmt {
public:
  DeclStmt(std::vector<VarDecl *> Vars, SourceLoc Loc)
      : Stmt(Kind::Decl, Loc), Vars(std::move(Vars)) {}
  const std::vector<VarDecl *> &vars() const { return Vars; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Decl; }

private:
  std::vector<VarDecl *> Vars;
};

class ExprStmt : public Stmt {
public:
  ExprStmt(Expr *E, SourceLoc Loc) : Stmt(Kind::Expr, Loc), E(E) {}
  Expr *expr() const { return E; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Expr; }

private:
  Expr *E;
};

class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  Expr *cond() const { return Cond; }
  Stmt *thenStmt() const { return Then; }
  Stmt *elseStmt() const { return Else; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(Body) {}
  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  Expr *Cond;
  Stmt *Body;
};

class DoStmt : public Stmt {
public:
  DoStmt(Stmt *Body, Expr *Cond, SourceLoc Loc)
      : Stmt(Kind::Do, Loc), Body(Body), Cond(Cond) {}
  Stmt *body() const { return Body; }
  Expr *cond() const { return Cond; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Do; }

private:
  Stmt *Body;
  Expr *Cond;
};

class ForStmt : public Stmt {
public:
  ForStmt(Stmt *Init, Expr *Cond, Expr *Inc, Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::For, Loc), Init(Init), Cond(Cond), Inc(Inc), Body(Body) {}
  Stmt *init() const { return Init; }
  Expr *cond() const { return Cond; }
  Expr *inc() const { return Inc; }
  Stmt *body() const { return Body; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  Stmt *Init;
  Expr *Cond;
  Expr *Inc;
  Stmt *Body;
};

/// One `case`/`default` arm of a switch; Values empty means default.
struct SwitchCase {
  std::vector<long long> Values;
  bool IsDefault = false;
  std::vector<Stmt *> Body;
};

/// switch statement. The parser requires cases to be directly inside the
/// switch body (no Duff's device); fallthrough is preserved.
class SwitchStmt : public Stmt {
public:
  SwitchStmt(Expr *Cond, std::vector<SwitchCase> Cases, SourceLoc Loc)
      : Stmt(Kind::Switch, Loc), Cond(Cond), Cases(std::move(Cases)) {}
  Expr *cond() const { return Cond; }
  const std::vector<SwitchCase> &cases() const { return Cases; }
  bool hasDefault() const {
    for (const SwitchCase &C : Cases)
      if (C.IsDefault)
        return true;
    return false;
  }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Switch; }

private:
  Expr *Cond;
  std::vector<SwitchCase> Cases;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(Expr *Value, SourceLoc Loc) : Stmt(Kind::Return, Loc), V(Value) {}
  Expr *value() const { return V; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

private:
  Expr *V;
};

class NullStmt : public Stmt {
public:
  explicit NullStmt(SourceLoc Loc) : Stmt(Kind::Null, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Null; }
};

//===----------------------------------------------------------------------===//
// ASTContext and TranslationUnit
//===----------------------------------------------------------------------===//

/// Owns every AST node and the type context for one translation unit.
/// Nodes are never freed individually; they live until the context dies.
class ASTContext {
public:
  TypeContext &types() { return Types; }
  const TypeContext &types() const { return Types; }

  /// Allocates and owns a new node.
  template <typename T, typename... Args> T *create(Args &&...As) {
    T *Ptr = new T(std::forward<Args>(As)...);
    OwnedNodes.emplace_back(Ptr, [](void *P) { delete static_cast<T *>(P); });
    return Ptr;
  }

private:
  TypeContext Types;
  std::vector<std::unique_ptr<void, void (*)(void *)>> OwnedNodes;
};

/// The root of a parsed program.
class TranslationUnit {
public:
  explicit TranslationUnit(ASTContext &Ctx) : Ctx(Ctx) {}

  ASTContext &context() { return Ctx; }

  const std::vector<VarDecl *> &globals() const { return Globals; }
  const std::vector<FunctionDecl *> &functions() const { return Functions; }
  const std::vector<RecordDecl *> &records() const { return Records; }

  void addGlobal(VarDecl *V) { Globals.push_back(V); }
  void addFunction(FunctionDecl *F) { Functions.push_back(F); }
  void addRecord(RecordDecl *R) { Records.push_back(R); }

  FunctionDecl *findFunction(const std::string &Name) const;

private:
  ASTContext &Ctx;
  std::vector<VarDecl *> Globals;
  std::vector<FunctionDecl *> Functions;
  std::vector<RecordDecl *> Records;
};

} // namespace cfront
} // namespace mcpta

#endif // MCPTA_CFRONT_AST_H
