//===- Lexer.cpp - C lexer ------------------------------------------------===//

#include "cfront/Lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace mcpta;
using namespace mcpta::cfront;

const char *mcpta::cfront::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile: return "end of file";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::IntLiteral: return "integer literal";
  case TokenKind::FloatLiteral: return "float literal";
  case TokenKind::CharLiteral: return "character literal";
  case TokenKind::StringLiteral: return "string literal";
  case TokenKind::KwVoid: return "'void'";
  case TokenKind::KwChar: return "'char'";
  case TokenKind::KwShort: return "'short'";
  case TokenKind::KwInt: return "'int'";
  case TokenKind::KwLong: return "'long'";
  case TokenKind::KwFloat: return "'float'";
  case TokenKind::KwDouble: return "'double'";
  case TokenKind::KwSigned: return "'signed'";
  case TokenKind::KwUnsigned: return "'unsigned'";
  case TokenKind::KwStruct: return "'struct'";
  case TokenKind::KwUnion: return "'union'";
  case TokenKind::KwEnum: return "'enum'";
  case TokenKind::KwTypedef: return "'typedef'";
  case TokenKind::KwExtern: return "'extern'";
  case TokenKind::KwStatic: return "'static'";
  case TokenKind::KwConst: return "'const'";
  case TokenKind::KwVolatile: return "'volatile'";
  case TokenKind::KwRegister: return "'register'";
  case TokenKind::KwAuto: return "'auto'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwDo: return "'do'";
  case TokenKind::KwFor: return "'for'";
  case TokenKind::KwSwitch: return "'switch'";
  case TokenKind::KwCase: return "'case'";
  case TokenKind::KwDefault: return "'default'";
  case TokenKind::KwBreak: return "'break'";
  case TokenKind::KwContinue: return "'continue'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwGoto: return "'goto'";
  case TokenKind::KwSizeof: return "'sizeof'";
  case TokenKind::KwNull: return "'NULL'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Semi: return "';'";
  case TokenKind::Comma: return "','";
  case TokenKind::Dot: return "'.'";
  case TokenKind::Arrow: return "'->'";
  case TokenKind::Amp: return "'&'";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Plus: return "'+'";
  case TokenKind::PlusPlus: return "'++'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::MinusMinus: return "'--'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::Bang: return "'!'";
  case TokenKind::BangEqual: return "'!='";
  case TokenKind::Tilde: return "'~'";
  case TokenKind::Caret: return "'^'";
  case TokenKind::Pipe: return "'|'";
  case TokenKind::PipePipe: return "'||'";
  case TokenKind::Question: return "'?'";
  case TokenKind::Colon: return "':'";
  case TokenKind::Less: return "'<'";
  case TokenKind::LessEqual: return "'<='";
  case TokenKind::LessLess: return "'<<'";
  case TokenKind::Greater: return "'>'";
  case TokenKind::GreaterEqual: return "'>='";
  case TokenKind::GreaterGreater: return "'>>'";
  case TokenKind::Equal: return "'='";
  case TokenKind::EqualEqual: return "'=='";
  case TokenKind::PlusEqual: return "'+='";
  case TokenKind::MinusEqual: return "'-='";
  case TokenKind::StarEqual: return "'*='";
  case TokenKind::SlashEqual: return "'/='";
  case TokenKind::PercentEqual: return "'%='";
  case TokenKind::AmpEqual: return "'&='";
  case TokenKind::PipeEqual: return "'|='";
  case TokenKind::CaretEqual: return "'^='";
  case TokenKind::LessLessEqual: return "'<<='";
  case TokenKind::GreaterGreaterEqual: return "'>>='";
  case TokenKind::Ellipsis: return "'...'";
  }
  return "unknown token";
}

static const std::unordered_map<std::string, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string, TokenKind> Table = {
      {"void", TokenKind::KwVoid},
      {"char", TokenKind::KwChar},
      {"short", TokenKind::KwShort},
      {"int", TokenKind::KwInt},
      {"long", TokenKind::KwLong},
      {"float", TokenKind::KwFloat},
      {"double", TokenKind::KwDouble},
      {"signed", TokenKind::KwSigned},
      {"unsigned", TokenKind::KwUnsigned},
      {"struct", TokenKind::KwStruct},
      {"union", TokenKind::KwUnion},
      {"enum", TokenKind::KwEnum},
      {"typedef", TokenKind::KwTypedef},
      {"extern", TokenKind::KwExtern},
      {"static", TokenKind::KwStatic},
      {"const", TokenKind::KwConst},
      {"volatile", TokenKind::KwVolatile},
      {"register", TokenKind::KwRegister},
      {"auto", TokenKind::KwAuto},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},
      {"for", TokenKind::KwFor},
      {"switch", TokenKind::KwSwitch},
      {"case", TokenKind::KwCase},
      {"default", TokenKind::KwDefault},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"return", TokenKind::KwReturn},
      {"goto", TokenKind::KwGoto},
      {"sizeof", TokenKind::KwSizeof},
      {"NULL", TokenKind::KwNull},
  };
  return Table;
}

Lexer::Lexer(std::string Source, DiagnosticsEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  if (Pos + Ahead >= Source.size())
    return '\0';
  return Source[Pos + Ahead];
}

char Lexer::advance() {
  assert(!atEnd() && "advance past end of buffer");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      bool Closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    // Skip preprocessor lines; sources are expected to be self-contained.
    if (C == '#' && Col == 1) {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

Token Lexer::lexIdentifierOrKeyword() {
  Token Tok;
  Tok.Loc = loc();
  std::string Text;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    Text += advance();
  auto It = keywordTable().find(Text);
  Tok.Kind = It != keywordTable().end() ? It->second : TokenKind::Identifier;
  Tok.Text = std::move(Text);
  return Tok;
}

Token Lexer::lexNumber() {
  Token Tok;
  Tok.Loc = loc();
  std::string Text;
  bool IsFloat = false;

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    Text += advance();
    Text += advance();
    while (!atEnd() && std::isxdigit(static_cast<unsigned char>(peek())))
      Text += advance();
    Tok.Kind = TokenKind::IntLiteral;
    Tok.IntValue = std::strtoll(Text.c_str(), nullptr, 16);
  } else {
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Text += advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      Text += advance();
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        Text += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      char Next = peek(1);
      char Next2 = peek(2);
      if (std::isdigit(static_cast<unsigned char>(Next)) ||
          ((Next == '+' || Next == '-') &&
           std::isdigit(static_cast<unsigned char>(Next2)))) {
        IsFloat = true;
        Text += advance();
        if (peek() == '+' || peek() == '-')
          Text += advance();
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
          Text += advance();
      }
    }
    if (IsFloat) {
      Tok.Kind = TokenKind::FloatLiteral;
      Tok.FloatValue = std::strtod(Text.c_str(), nullptr);
    } else {
      Tok.Kind = TokenKind::IntLiteral;
      Tok.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
    }
  }
  // Swallow integer/float suffixes (L, U, f, ...).
  while (!atEnd() && (peek() == 'l' || peek() == 'L' || peek() == 'u' ||
                      peek() == 'U' || peek() == 'f' || peek() == 'F'))
    Text += advance();
  Tok.Text = std::move(Text);
  return Tok;
}

static char decodeEscape(char C) {
  switch (C) {
  case 'n': return '\n';
  case 't': return '\t';
  case 'r': return '\r';
  case '0': return '\0';
  case '\\': return '\\';
  case '\'': return '\'';
  case '"': return '"';
  default: return C;
  }
}

Token Lexer::lexCharLiteral() {
  Token Tok;
  Tok.Loc = loc();
  Tok.Kind = TokenKind::CharLiteral;
  advance(); // opening quote
  char Value = 0;
  if (peek() == '\\') {
    advance();
    if (!atEnd())
      Value = decodeEscape(advance());
  } else if (!atEnd() && peek() != '\'') {
    Value = advance();
  }
  if (!match('\''))
    Diags.error(Tok.Loc, "unterminated character literal");
  Tok.IntValue = Value;
  Tok.Text = std::string(1, Value);
  return Tok;
}

Token Lexer::lexStringLiteral() {
  Token Tok;
  Tok.Loc = loc();
  Tok.Kind = TokenKind::StringLiteral;
  advance(); // opening quote
  std::string Text;
  while (!atEnd() && peek() != '"') {
    char C = advance();
    if (C == '\\' && !atEnd())
      C = decodeEscape(advance());
    Text += C;
  }
  if (!match('"'))
    Diags.error(Tok.Loc, "unterminated string literal");
  Tok.Text = std::move(Text);
  return Tok;
}

Token Lexer::lexToken() {
  skipWhitespaceAndComments();

  Token Tok;
  Tok.Loc = loc();
  if (atEnd()) {
    Tok.Kind = TokenKind::EndOfFile;
    return Tok;
  }

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (C == '\'')
    return lexCharLiteral();
  if (C == '"')
    return lexStringLiteral();

  advance();
  switch (C) {
  case '(': Tok.Kind = TokenKind::LParen; break;
  case ')': Tok.Kind = TokenKind::RParen; break;
  case '{': Tok.Kind = TokenKind::LBrace; break;
  case '}': Tok.Kind = TokenKind::RBrace; break;
  case '[': Tok.Kind = TokenKind::LBracket; break;
  case ']': Tok.Kind = TokenKind::RBracket; break;
  case ';': Tok.Kind = TokenKind::Semi; break;
  case ',': Tok.Kind = TokenKind::Comma; break;
  case '?': Tok.Kind = TokenKind::Question; break;
  case ':': Tok.Kind = TokenKind::Colon; break;
  case '~': Tok.Kind = TokenKind::Tilde; break;
  case '.':
    if (peek() == '.' && peek(1) == '.') {
      advance();
      advance();
      Tok.Kind = TokenKind::Ellipsis;
    } else {
      Tok.Kind = TokenKind::Dot;
    }
    break;
  case '+':
    Tok.Kind = match('+')   ? TokenKind::PlusPlus
               : match('=') ? TokenKind::PlusEqual
                            : TokenKind::Plus;
    break;
  case '-':
    Tok.Kind = match('-')   ? TokenKind::MinusMinus
               : match('=') ? TokenKind::MinusEqual
               : match('>') ? TokenKind::Arrow
                            : TokenKind::Minus;
    break;
  case '*':
    Tok.Kind = match('=') ? TokenKind::StarEqual : TokenKind::Star;
    break;
  case '/':
    Tok.Kind = match('=') ? TokenKind::SlashEqual : TokenKind::Slash;
    break;
  case '%':
    Tok.Kind = match('=') ? TokenKind::PercentEqual : TokenKind::Percent;
    break;
  case '!':
    Tok.Kind = match('=') ? TokenKind::BangEqual : TokenKind::Bang;
    break;
  case '^':
    Tok.Kind = match('=') ? TokenKind::CaretEqual : TokenKind::Caret;
    break;
  case '&':
    Tok.Kind = match('&')   ? TokenKind::AmpAmp
               : match('=') ? TokenKind::AmpEqual
                            : TokenKind::Amp;
    break;
  case '|':
    Tok.Kind = match('|')   ? TokenKind::PipePipe
               : match('=') ? TokenKind::PipeEqual
                            : TokenKind::Pipe;
    break;
  case '=':
    Tok.Kind = match('=') ? TokenKind::EqualEqual : TokenKind::Equal;
    break;
  case '<':
    if (match('<'))
      Tok.Kind = match('=') ? TokenKind::LessLessEqual : TokenKind::LessLess;
    else
      Tok.Kind = match('=') ? TokenKind::LessEqual : TokenKind::Less;
    break;
  case '>':
    if (match('>'))
      Tok.Kind = match('=') ? TokenKind::GreaterGreaterEqual
                            : TokenKind::GreaterGreater;
    else
      Tok.Kind = match('=') ? TokenKind::GreaterEqual : TokenKind::Greater;
    break;
  default:
    Diags.error(Tok.Loc, std::string("invalid character '") + C + "'");
    return lexToken();
  }
  return Tok;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token Tok = lexToken();
    bool AtEof = Tok.is(TokenKind::EndOfFile);
    Tokens.push_back(std::move(Tok));
    if (AtEof)
      break;
  }
  return Tokens;
}
