//===- Token.h - C token definitions ----------------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the Lexer for the C subset accepted by the
/// mcpta front end (the subset McCAT's SIMPLE representation covers,
/// minus goto — see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_CFRONT_TOKEN_H
#define MCPTA_CFRONT_TOKEN_H

#include "support/SourceLoc.h"

#include <string>

namespace mcpta {
namespace cfront {

enum class TokenKind {
  EndOfFile,
  Identifier,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwVoid,
  KwChar,
  KwShort,
  KwInt,
  KwLong,
  KwFloat,
  KwDouble,
  KwSigned,
  KwUnsigned,
  KwStruct,
  KwUnion,
  KwEnum,
  KwTypedef,
  KwExtern,
  KwStatic,
  KwConst,
  KwVolatile,
  KwRegister,
  KwAuto,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwSwitch,
  KwCase,
  KwDefault,
  KwBreak,
  KwContinue,
  KwReturn,
  KwGoto,
  KwSizeof,
  KwNull, // the NULL macro, pre-expanded by the lexer

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Arrow,      // ->
  Amp,        // &
  AmpAmp,     // &&
  Star,       // *
  Plus,       // +
  PlusPlus,   // ++
  Minus,      // -
  MinusMinus, // --
  Slash,      // /
  Percent,    // %
  Bang,       // !
  BangEqual,  // !=
  Tilde,      // ~
  Caret,      // ^
  Pipe,       // |
  PipePipe,   // ||
  Question,   // ?
  Colon,      // :
  Less,       // <
  LessEqual,  // <=
  LessLess,   // <<
  Greater,    // >
  GreaterEqual,   // >=
  GreaterGreater, // >>
  Equal,          // =
  EqualEqual,     // ==
  PlusEqual,
  MinusEqual,
  StarEqual,
  SlashEqual,
  PercentEqual,
  AmpEqual,
  PipeEqual,
  CaretEqual,
  LessLessEqual,
  GreaterGreaterEqual,
  Ellipsis, // ...
};

/// Returns a human-readable spelling for diagnostics ("'+='", "identifier").
const char *tokenKindName(TokenKind Kind);

/// One lexed token. \c Text holds the identifier/literal spelling.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  SourceLoc Loc;
  std::string Text;

  /// Integer value for IntLiteral / CharLiteral tokens.
  long long IntValue = 0;
  /// Value for FloatLiteral tokens.
  double FloatValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace cfront
} // namespace mcpta

#endif // MCPTA_CFRONT_TOKEN_H
