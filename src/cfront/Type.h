//===- Type.h - C type representation ---------------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned type representation for the C subset. Types are immutable and
/// uniqued inside a TypeContext, so pointer equality is type equality.
/// The points-to analysis consults types to decide how many levels of
/// indirection a variable has, which struct fields can carry pointers,
/// and which abstract locations are arrays (head/tail split, Sec. 3.2 of
/// the paper).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_CFRONT_TYPE_H
#define MCPTA_CFRONT_TYPE_H

#include <cassert>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mcpta {
namespace cfront {

class RecordDecl;
class Type;

/// Root of the type hierarchy. Uses LLVM-style kind tags + classof for
/// dispatch instead of RTTI.
class Type {
public:
  enum class Kind {
    Builtin,
    Pointer,
    Array,
    Record,
    Function,
  };

  Kind kind() const { return K; }
  virtual ~Type() = default;

  bool isPointer() const { return K == Kind::Pointer; }
  bool isArray() const { return K == Kind::Array; }
  bool isRecord() const { return K == Kind::Record; }
  bool isFunction() const { return K == Kind::Function; }
  bool isVoid() const;
  bool isInteger() const;
  bool isFloating() const;
  bool isScalar() const { return !isRecord() && !isArray() && !isFunction(); }

  /// True if a value of this type is, or transitively contains, a pointer
  /// (or function pointer). Only pointer-bearing locations participate in
  /// points-to relationships.
  bool isPointerBearing() const;

  /// Renders the type in C-ish syntax for diagnostics and dumps.
  std::string str() const;

protected:
  explicit Type(Kind K) : K(K) {}

private:
  Kind K;
};

/// Builtin scalar types. Integer widths are not modeled precisely; the
/// analysis only distinguishes integral vs floating vs void.
class BuiltinType : public Type {
public:
  enum class BK {
    Void,
    Char,
    SChar,
    UChar,
    Short,
    UShort,
    Int,
    UInt,
    Long,
    ULong,
    LongLong,
    ULongLong,
    Float,
    Double,
    LongDouble,
  };

  BK builtinKind() const { return B; }

  static bool classof(const Type *T) { return T->kind() == Kind::Builtin; }

private:
  friend class TypeContext;
  explicit BuiltinType(BK B) : Type(Kind::Builtin), B(B) {}
  BK B;
};

/// T* for some pointee T.
class PointerType : public Type {
public:
  const Type *pointee() const { return Pointee; }

  static bool classof(const Type *T) { return T->kind() == Kind::Pointer; }

private:
  friend class TypeContext;
  explicit PointerType(const Type *Pointee)
      : Type(Kind::Pointer), Pointee(Pointee) {}
  const Type *Pointee;
};

/// T[N]. Size -1 means an incomplete array (e.g. parameter arrays).
class ArrayType : public Type {
public:
  const Type *element() const { return Element; }
  long size() const { return Size; }

  static bool classof(const Type *T) { return T->kind() == Kind::Array; }

private:
  friend class TypeContext;
  ArrayType(const Type *Element, long Size)
      : Type(Kind::Array), Element(Element), Size(Size) {}
  const Type *Element;
  long Size;
};

/// struct/union type; points at its (possibly later-completed) decl.
class RecordType : public Type {
public:
  RecordDecl *decl() const { return Decl; }

  static bool classof(const Type *T) { return T->kind() == Kind::Record; }

private:
  friend class TypeContext;
  explicit RecordType(RecordDecl *Decl) : Type(Kind::Record), Decl(Decl) {}
  RecordDecl *Decl;
};

/// Function type: return type and parameter types.
class FunctionType : public Type {
public:
  const Type *returnType() const { return Return; }
  const std::vector<const Type *> &paramTypes() const { return Params; }
  bool isVariadic() const { return Variadic; }

  static bool classof(const Type *T) { return T->kind() == Kind::Function; }

private:
  friend class TypeContext;
  FunctionType(const Type *Return, std::vector<const Type *> Params,
               bool Variadic)
      : Type(Kind::Function), Return(Return), Params(std::move(Params)),
        Variadic(Variadic) {}
  const Type *Return;
  std::vector<const Type *> Params;
  bool Variadic;
};

/// LLVM-ish cast helpers over the Kind tags.
template <typename To> const To *dynCast(const Type *T) {
  if (T && To::classof(T))
    return static_cast<const To *>(T);
  return nullptr;
}

template <typename To> const To *cast(const Type *T) {
  assert(T && To::classof(T) && "invalid type cast");
  return static_cast<const To *>(T);
}

/// Owns and uniques all Type instances for one translation unit.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const BuiltinType *builtin(BuiltinType::BK B) const {
    return Builtins.at(B);
  }
  const BuiltinType *voidType() const { return builtin(BuiltinType::BK::Void); }
  const BuiltinType *intType() const { return builtin(BuiltinType::BK::Int); }
  const BuiltinType *charType() const { return builtin(BuiltinType::BK::Char); }
  const BuiltinType *doubleType() const {
    return builtin(BuiltinType::BK::Double);
  }

  const PointerType *pointerTo(const Type *Pointee);
  const ArrayType *arrayOf(const Type *Element, long Size);
  const RecordType *recordType(RecordDecl *Decl);
  const FunctionType *functionType(const Type *Return,
                                   std::vector<const Type *> Params,
                                   bool Variadic);

private:
  std::vector<std::unique_ptr<Type>> Owned;
  std::map<BuiltinType::BK, const BuiltinType *> Builtins;
  std::map<const Type *, const PointerType *> Pointers;
  std::map<std::pair<const Type *, long>, const ArrayType *> Arrays;
  std::map<RecordDecl *, const RecordType *> Records;
  std::map<std::tuple<const Type *, std::vector<const Type *>, bool>,
           const FunctionType *>
      Functions;
};

} // namespace cfront
} // namespace mcpta

#endif // MCPTA_CFRONT_TYPE_H
