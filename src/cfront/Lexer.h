//===- Lexer.h - C lexer ----------------------------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written lexer for the accepted C subset. Comments (// and /* */)
/// are skipped; preprocessor directives are not supported except that
/// lines starting with '#' are skipped with a warning, and the common
/// NULL macro lexes as a dedicated keyword so sources need no headers.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_CFRONT_LEXER_H
#define MCPTA_CFRONT_LEXER_H

#include "cfront/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace mcpta {
namespace cfront {

/// Converts a C source buffer into a token stream.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticsEngine &Diags);

  /// Lexes the whole buffer. The returned vector always ends with an
  /// EndOfFile token. Invalid characters produce diagnostics and are
  /// skipped.
  std::vector<Token> lexAll();

private:
  Token lexToken();
  Token lexIdentifierOrKeyword();
  Token lexNumber();
  Token lexCharLiteral();
  Token lexStringLiteral();
  void skipWhitespaceAndComments();

  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc loc() const { return SourceLoc(Line, Col); }

  std::string Source;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace cfront
} // namespace mcpta

#endif // MCPTA_CFRONT_LEXER_H
