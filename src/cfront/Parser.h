//===- Parser.h - C parser --------------------------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the accepted C subset. Parsing and
/// semantic analysis are fused: identifiers are resolved against scoped
/// symbol tables as they are parsed and every expression is typed
/// bottom-up, so the resulting AST needs no separate Sema pass.
///
/// Accepted language (see DESIGN.md): declarations with full C declarator
/// syntax (multi-level pointers, arrays, function pointers, typedefs,
/// struct/union/enum), all structured statements, and the C expression
/// grammar. `goto` is rejected — McCAT ran a goto-elimination phase [14]
/// that is out of scope for this reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_CFRONT_PARSER_H
#define MCPTA_CFRONT_PARSER_H

#include "cfront/AST.h"
#include "cfront/Token.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mcpta {
namespace cfront {

/// Parses one translation unit.
class Parser {
public:
  Parser(std::vector<Token> Tokens, ASTContext &Ctx,
         DiagnosticsEngine &Diags);

  /// Parses the whole token stream. On error, diagnostics are recorded
  /// and a best-effort (possibly partial) unit is still returned; callers
  /// must check \c DiagnosticsEngine::hasErrors().
  std::unique_ptr<TranslationUnit> parseTranslationUnit();

  /// Convenience: lex + parse a source string in one step.
  static std::unique_ptr<TranslationUnit>
  parseSource(const std::string &Source, ASTContext &Ctx,
              DiagnosticsEngine &Diags);

private:
  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//
  const Token &cur() const { return Tokens[Pos]; }
  const Token &peekTok(unsigned Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool check(TokenKind K) const { return cur().is(K); }
  bool accept(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  Token consume();
  void skipTo(TokenKind K);
  void skipToStmtBoundary();

  //===--------------------------------------------------------------------===//
  // Scopes and lookup
  //===--------------------------------------------------------------------===//
  struct Scope {
    std::map<std::string, Decl *> Ordinary; // vars, functions, typedefs, enums
    std::map<std::string, RecordDecl *> Tags;
  };
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  Decl *lookup(const std::string &Name) const;
  RecordDecl *lookupTag(const std::string &Name) const;
  void declare(Decl *D);
  void declareTag(RecordDecl *D);
  bool isTypeName(const Token &Tok) const;
  bool startsDeclaration() const;

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//
  struct DeclSpec {
    const Type *Ty = nullptr;
    bool IsTypedef = false;
    bool IsExtern = false;
    bool IsStatic = false;
  };

  struct ParamInfo {
    const Type *Ty = nullptr;
    std::string Name;
    SourceLoc Loc;
  };

  struct Declarator {
    unsigned PtrCount = 0;
    std::string Name;
    SourceLoc NameLoc;
    std::unique_ptr<Declarator> Inner;
    struct Suffix {
      bool IsFunc = false;
      long ArraySize = -1; // for array suffixes
      std::vector<ParamInfo> Params;
      bool Variadic = false;
    };
    std::vector<Suffix> Suffixes;
    /// The parameter list of the outermost function suffix directly
    /// attached to the name, if any (used for function definitions).
    const std::vector<ParamInfo> *topLevelParams() const;
    bool topLevelVariadic() const;
    /// The declared name, possibly nested in parenthesized declarators.
    const std::string &declaredName() const {
      return Inner ? Inner->declaredName() : Name;
    }
    SourceLoc declaredLoc() const {
      return Inner ? Inner->declaredLoc() : NameLoc;
    }
  };

  bool parseDeclSpec(DeclSpec &DS);
  const Type *parseStructOrUnion();
  const Type *parseEnum();
  bool parseDeclarator(Declarator &D, bool Abstract);
  bool parseParamList(Declarator::Suffix &Suffix);
  const Type *applyDeclarator(const Declarator &D, const Type *Base);
  const Type *parseTypeName(); // for casts and sizeof

  void parseTopLevel();
  void parseFunctionDefinition(const DeclSpec &DS, const Declarator &D,
                               const Type *FnTy);
  Stmt *parseLocalDeclaration();
  Expr *parseInitializer();

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//
  Stmt *parseStmt();
  CompoundStmt *parseCompound();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseDo();
  Stmt *parseFor();
  Stmt *parseSwitch();
  Stmt *parseReturn();

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//
  Expr *parseExpr();       // includes comma
  Expr *parseAssign();     // assignment level
  Expr *parseConditional();
  Expr *parseBinary(int MinPrec);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();
  Expr *errorExpr(SourceLoc Loc);

  /// Applies array-to-pointer and function-to-pointer decay for value
  /// contexts.
  const Type *decayed(const Type *Ty);
  /// Result type of binary arithmetic under loose usual conversions.
  const Type *usualArith(const Type *L, const Type *R);
  long long computeSizeof(const Type *Ty) const;

  std::vector<Token> Tokens;
  size_t Pos = 0;
  ASTContext &Ctx;
  TypeContext &Types;
  DiagnosticsEngine &Diags;
  std::unique_ptr<TranslationUnit> Unit;
  std::vector<Scope> Scopes;
  FunctionDecl *CurFunction = nullptr;
  unsigned AnonRecordCount = 0;
};

} // namespace cfront
} // namespace mcpta

#endif // MCPTA_CFRONT_PARSER_H
