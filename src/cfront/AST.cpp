//===- AST.cpp - C abstract syntax tree ------------------------------------===//

#include "cfront/AST.h"

using namespace mcpta;
using namespace mcpta::cfront;

FieldDecl *RecordDecl::findField(const std::string &Name) const {
  for (FieldDecl *F : Fields)
    if (F->name() == Name)
      return F;
  return nullptr;
}

FunctionDecl *CallExpr::directCallee() const {
  const Expr *C = Callee;
  // Peel parens-like casts and an explicit deref/addr-of of a function
  // designator: in C, (*f)(), (&f)(), and f() all call f directly when f
  // names a function.
  while (true) {
    if (const auto *Cast = dynCastExpr<CastExpr>(C)) {
      C = Cast->sub();
      continue;
    }
    if (const auto *U = dynCastExpr<UnaryExpr>(C)) {
      if (U->op() == UnaryOp::Deref || U->op() == UnaryOp::AddrOf) {
        // Only peel when the operand directly names a function; a deref of
        // a function *pointer variable* is an indirect call.
        if (const auto *DR = dynCastExpr<DeclRefExpr>(U->sub()))
          if (DR->decl()->kind() == Decl::Kind::Function) {
            C = U->sub();
            continue;
          }
      }
    }
    break;
  }
  if (const auto *DR = dynCastExpr<DeclRefExpr>(C))
    if (DR->decl()->kind() == Decl::Kind::Function)
      return static_cast<FunctionDecl *>(DR->decl());
  return nullptr;
}

FunctionDecl *TranslationUnit::findFunction(const std::string &Name) const {
  for (FunctionDecl *F : Functions)
    if (F->name() == Name)
      return F;
  return nullptr;
}
