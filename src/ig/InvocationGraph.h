//===- InvocationGraph.h - Invocation graphs --------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The invocation graph of Sec. 4 / Figure 2: an explicit tree of all
/// procedure invocation chains starting at main. Recursion is
/// approximated by matched (Recursive, Approximate) node pairs connected
/// by a special back edge; the Approximate leaf never evaluates the
/// function body, it consumes the Recursive ancestor's stored summary.
///
/// Each node carries the paper's per-context storage: memoized IN/OUT
/// points-to sets, the pending-input list of the recursion fixed point
/// (Figure 4), and the map information associating symbolic names with
/// the invisible caller variables they stand for (Sec. 4.1) — the
/// context-sensitive data later analyses reuse.
///
/// With function pointers (Sec. 5) the graph cannot be completed by a
/// textual pass: indirect call sites are left open at build time and
/// grown during points-to analysis via getOrCreateChild.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_IG_INVOCATIONGRAPH_H
#define MCPTA_IG_INVOCATIONGRAPH_H

#include "pointsto/MapInfo.h"
#include "pointsto/PointsToSet.h"
#include "simple/SimpleIR.h"
#include "support/Limits.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace mcpta {
namespace pta {

/// One invocation-graph node: a function in a specific calling context.
class IGNode {
public:
  enum class Kind { Ordinary, Recursive, Approximate };

  const cfront::FunctionDecl *function() const { return F; }
  Kind kind() const { return K; }
  IGNode *parent() const { return Parent; }
  unsigned callSiteId() const { return CallSiteId; }
  const std::vector<IGNode *> &children() const { return Children; }

  /// For Approximate nodes: the matching Recursive ancestor.
  IGNode *recEdge() const { return RecEdge; }

  bool isApproximate() const { return K == Kind::Approximate; }
  bool isRecursive() const { return K == Kind::Recursive; }
  void markRecursive() { K = Kind::Recursive; }

  /// True if some ancestor (or this node) is \p Fn — recursion test.
  const IGNode *findAncestor(const cfront::FunctionDecl *Fn) const;

  unsigned depth() const;

  //===--------------------------------------------------------------------===//
  // Analysis storage (Figure 4)
  //===--------------------------------------------------------------------===//
  std::optional<PointsToSet> StoredInput;
  std::optional<PointsToSet> StoredOutput;
  std::vector<PointsToSet> PendingList;

  /// A memoized result depends on the summaries of the node's proper
  /// ancestor Recursive nodes (reached through Approximate back edges
  /// inside the subtree). MemoDeps records their versions at store
  /// time; the memo is reusable only while they are unchanged.
  /// SummaryVersion bumps whenever this (Recursive) node's stored
  /// summary changes during its fixed point.
  unsigned SummaryVersion = 0;
  std::vector<std::pair<const IGNode *, unsigned>> MemoDeps;
  /// Set once a Recursive node's Figure-4 fixed point has converged.
  bool FixpointDone = false;

  /// Number of times the analyzer evaluated this node's body (memo
  /// hits and seeded grafts do not count). Serialized into the result
  /// snapshot: the incremental engine only trusts a baseline node as a
  /// seed donor when it was evaluated exactly once, so its StoredInput
  /// is the one input its subtree state derives from.
  unsigned EvalCount = 0;

  /// The child for (CallSiteId, Callee) if one exists, else null.
  /// Exposed for the incremental engine's subtree grafting, which must
  /// overlay donor state onto eagerly-built direct children.
  IGNode *findChild(unsigned CallSiteId,
                    const cfront::FunctionDecl *Callee) const {
    auto It = childLowerBound(CallSiteId, Callee);
    return (It != ChildIndex.end() && It->CallSiteId == CallSiteId &&
            It->Callee == Callee)
               ? It->Child
               : nullptr;
  }

  /// Map information (Sec. 4.1): for each symbolic location id used
  /// inside this invocation, the ids of the caller locations (invisible
  /// variables) it represents in this context. Deterministically
  /// ordered (sorted by id); resolve ids via the run's LocationTable.
  MapInfoTable MapInfo;

  /// Renders the subtree, e.g. for Figure 2/7-style test expectations.
  std::string str(unsigned Indent = 0) const;

private:
  friend class InvocationGraph;
  IGNode(const cfront::FunctionDecl *F, IGNode *Parent, unsigned CallSiteId)
      : F(F), Parent(Parent), CallSiteId(CallSiteId) {}

  const cfront::FunctionDecl *F;
  Kind K = Kind::Ordinary;
  IGNode *Parent;
  unsigned CallSiteId;
  std::vector<IGNode *> Children;
  IGNode *RecEdge = nullptr;

  /// Flat (call site, callee) -> child index, sorted; the hot lookup on
  /// every re-visited context (ig.child_cache_hits).
  struct ChildKey {
    unsigned CallSiteId;
    const cfront::FunctionDecl *Callee;
    IGNode *Child;
  };
  std::vector<ChildKey> ChildIndex;

  std::vector<ChildKey>::const_iterator
  childLowerBound(unsigned Site, const cfront::FunctionDecl *Callee) const {
    return std::lower_bound(
        ChildIndex.begin(), ChildIndex.end(), std::make_pair(Site, Callee),
        [](const ChildKey &E,
           const std::pair<unsigned, const cfront::FunctionDecl *> &K) {
          if (E.CallSiteId != K.first)
            return E.CallSiteId < K.first;
          return E.Callee < K.second;
        });
  }
  void indexChild(unsigned Site, const cfront::FunctionDecl *Callee,
                  IGNode *Child) {
    auto It = childLowerBound(Site, Callee);
    ChildIndex.insert(ChildIndex.begin() + (It - ChildIndex.begin()),
                      ChildKey{Site, Callee, Child});
  }
};

/// The whole invocation graph. Owns its nodes.
class InvocationGraph {
public:
  /// Builds the initial graph from direct calls only, rooted at `main`,
  /// leaving indirect call sites open. Returns null if the program has
  /// no defined main.
  ///
  /// When \p Meter is non-null the build is resource-governed: every
  /// node created is reported through BudgetMeter::noteIGNode, and once
  /// the node cap (or the deadline) trips, eager direct-call expansion
  /// stops — the remaining subtrees are grown lazily by
  /// getOrCreateChild, which then hands out shared canonical
  /// per-function nodes instead of per-context ones.
  static std::unique_ptr<InvocationGraph>
  build(const simple::Program &Prog, support::BudgetMeter *Meter = nullptr);

  IGNode *root() const { return Root; }
  const simple::Program &program() const { return *Prog; }

  /// Finds or creates the child of \p Parent for calling \p Callee from
  /// call site \p CallSiteId. If \p Callee appears on the ancestor
  /// chain, the child is an Approximate node wired to that (now
  /// Recursive) ancestor; otherwise an Ordinary node whose direct-call
  /// subtree is expanded eagerly. Idempotent.
  ///
  /// Once the governing meter has tripped, new contexts are no longer
  /// materialized: the call returns one shared canonical node per
  /// callee (parented at the root, never eagerly expanded). The
  /// analyzer evaluates such nodes context-insensitively, so sharing
  /// them across call sites is sound — it merges contexts, exactly the
  /// degradation we opted into.
  IGNode *getOrCreateChild(IGNode *Parent, unsigned CallSiteId,
                           const cfront::FunctionDecl *Callee);

  /// Memo-table seeding API (incremental re-analysis): creates a child
  /// of \p Parent replicating a baseline node — kind and recursion back
  /// edge are taken from the donor, no recursion detection runs, and
  /// the child's direct calls are NOT eagerly expanded (the graft walk
  /// replicates the donor subtree instead). The child is registered in
  /// the parent's (call site, callee) index so later lookups find it.
  /// Callers are responsible for structural validity (the donor subtree
  /// must be what a fresh evaluation would have built).
  IGNode *graftChild(IGNode *Parent, unsigned CallSiteId,
                     const cfront::FunctionDecl *Callee, IGNode::Kind K,
                     IGNode *RecEdge);

  //===--------------------------------------------------------------------===//
  // Statistics (Table 6)
  //===--------------------------------------------------------------------===//

  /// Growth counters accumulated while the graph is built and grown
  /// (telemetry: ig.nodes_created, ig.child_cache_hits). A cache hit is
  /// a getOrCreateChild call answered from the child index — i.e. a
  /// re-visited (call site, callee) context.
  struct BuildCounters {
    uint64_t NodesCreated = 0; ///< guarded by GrowthMu on concurrent paths
    /// Atomic: bumped under per-parent stripes, which do not serialize
    /// accesses to one shared counter across different parents.
    std::atomic<uint64_t> ChildCacheHits{0};
    std::atomic<uint64_t> RecursivePromotions{0};
    /// getOrCreateChild calls answered with a shared canonical node
    /// because the node budget (or deadline) had tripped.
    uint64_t CanonicalFallbacks = 0;
    /// Contended stripe acquisitions of the memo table: two threads
    /// raced on the same parent's child index (pta.par.memo_races).
    /// Expected 0 in a sequential run, and 0 under the scheduler's
    /// disjoint-subtree dispatch discipline (docs/PARALLEL.md).
    std::atomic<uint64_t> MemoRaces{0};
  };
  const BuildCounters &buildCounters() const { return Ctrs; }

  unsigned numNodes() const;
  unsigned numRecursive() const;
  unsigned numApproximate() const;
  /// Distinct functions with at least one node.
  unsigned numFunctionsCovered() const;

  template <typename Fn> void forEachNode(Fn F) const {
    forEachNodeImpl(Root, F);
  }

  /// Every node in preorder: a parent before its children, child order
  /// preserved. This is the canonical linearization the serialized
  /// result format (serve::Serialize, mcpta-result-v3) indexes nodes
  /// by — every ancestor, including a recursion back-edge target,
  /// precedes the nodes that reference it.
  std::vector<const IGNode *> preorder() const;

  std::string str() const { return Root ? Root->str() : "<empty>"; }

private:
  InvocationGraph() = default;

  IGNode *makeNode(const cfront::FunctionDecl *F, IGNode *Parent,
                   unsigned CallSiteId);
  void expandDirectCalls(IGNode *Node);
  void collectCalls(const simple::Stmt *S,
                    std::vector<const simple::CallInfo *> &Out) const;

  template <typename Fn> void forEachNodeImpl(IGNode *N, Fn &F) const {
    if (!N)
      return;
    F(N);
    for (IGNode *C : N->children())
      forEachNodeImpl(C, F);
  }

  const simple::Program *Prog = nullptr;
  IGNode *Root = nullptr;
  std::vector<std::unique_ptr<IGNode>> Nodes;
  BuildCounters Ctrs;
  /// Resource governor; null for ungoverned runs.
  support::BudgetMeter *Meter = nullptr;
  /// Shared per-function nodes handed out after the budget tripped.
  std::map<const cfront::FunctionDecl *, IGNode *> CanonicalNodes;

  /// The memoized IN/OUT table's concurrency envelope: insert-if-absent
  /// on a parent's (call site, callee) child index is serialized by a
  /// lock stripe keyed on the parent node, so concurrent evaluations of
  /// disjoint subtrees may look up and grow the graph safely. Node
  /// ownership and the canonical-fallback map are guarded separately by
  /// GrowthMu (always acquired after a stripe, never the reverse).
  /// Contended stripe acquisitions are counted in Ctrs.MemoRaces.
  static constexpr unsigned NumMemoStripes = 16;
  std::mutex &memoStripe(const IGNode *Parent) {
    size_t H = reinterpret_cast<uintptr_t>(Parent) / alignof(IGNode);
    return MemoStripes[H % NumMemoStripes].Mu;
  }
  struct AlignedMutex {
    alignas(64) std::mutex Mu; ///< one cache line per stripe
  };
  std::array<AlignedMutex, NumMemoStripes> MemoStripes;
  std::mutex GrowthMu;
};

/// Collects the call sites appearing in a statement tree, in program
/// order (exposed for clients computing Table 6's call-site column).
void collectCallInfos(const simple::Stmt *S,
                      std::vector<const simple::CallInfo *> &Out);

} // namespace pta
} // namespace mcpta

#endif // MCPTA_IG_INVOCATIONGRAPH_H
