//===- InvocationGraph.cpp - Invocation graphs -------------------------------===//

#include "ig/InvocationGraph.h"

#include <cassert>

using namespace mcpta;
using namespace mcpta::pta;
using namespace mcpta::simple;
namespace cf = mcpta::cfront;
using cf::FunctionDecl;

const IGNode *IGNode::findAncestor(const FunctionDecl *Fn) const {
  for (const IGNode *N = Parent; N; N = N->Parent)
    if (N->F == Fn)
      return N;
  return nullptr;
}

unsigned IGNode::depth() const {
  unsigned D = 0;
  for (const IGNode *N = Parent; N; N = N->Parent)
    ++D;
  return D;
}

std::string IGNode::str(unsigned Indent) const {
  std::string Out(Indent * 2, ' ');
  Out += F ? F->name() : "<extern>";
  if (K == Kind::Recursive)
    Out += " [R]";
  else if (K == Kind::Approximate)
    Out += " [A]";
  Out += "\n";
  for (const IGNode *C : Children)
    Out += C->str(Indent + 1);
  return Out;
}

void mcpta::pta::collectCallInfos(const Stmt *S,
                                  std::vector<const CallInfo *> &Out) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = castStmt<AssignStmt>(S);
    if (A->RK == AssignStmt::RhsKind::Call)
      Out.push_back(&A->Call);
    return;
  }
  case Stmt::Kind::Call:
    Out.push_back(&castStmt<CallStmt>(S)->Call);
    return;
  case Stmt::Kind::Block:
    for (const Stmt *C : castStmt<BlockStmt>(S)->Body)
      collectCallInfos(C, Out);
    return;
  case Stmt::Kind::If: {
    const auto *I = castStmt<IfStmt>(S);
    collectCallInfos(I->Then, Out);
    collectCallInfos(I->Else, Out);
    return;
  }
  case Stmt::Kind::Loop: {
    const auto *L = castStmt<LoopStmt>(S);
    collectCallInfos(L->Body, Out);
    collectCallInfos(L->Trailer, Out);
    return;
  }
  case Stmt::Kind::Switch:
    for (const SwitchStmt::Case &C : castStmt<SwitchStmt>(S)->Cases)
      for (const Stmt *B : C.Body)
        collectCallInfos(B, Out);
    return;
  case Stmt::Kind::Return:
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return;
  }
}

void InvocationGraph::collectCalls(const Stmt *S,
                                   std::vector<const CallInfo *> &Out) const {
  collectCallInfos(S, Out);
}

IGNode *InvocationGraph::makeNode(const FunctionDecl *F, IGNode *Parent,
                                  unsigned CallSiteId) {
  Nodes.push_back(std::unique_ptr<IGNode>(new IGNode(F, Parent, CallSiteId)));
  ++Ctrs.NodesCreated;
  if (Meter)
    Meter->noteIGNode(Ctrs.NodesCreated);
  return Nodes.back().get();
}

std::unique_ptr<InvocationGraph>
InvocationGraph::build(const Program &Prog, support::BudgetMeter *Meter) {
  const FunctionDecl *Main = Prog.unit().findFunction("main");
  if (!Main || !Prog.findFunction(Main))
    return nullptr;

  std::unique_ptr<InvocationGraph> IG(new InvocationGraph());
  IG->Prog = &Prog;
  IG->Meter = Meter;
  IG->Root = IG->makeNode(Main, nullptr, /*CallSiteId=*/~0u);
  IG->expandDirectCalls(IG->Root);
  return IG;
}

void InvocationGraph::expandDirectCalls(IGNode *Node) {
  // Governed build: once the node cap or deadline trips, stop the eager
  // per-context expansion. Unexpanded calls are grown lazily during the
  // analysis, which by then shares canonical nodes (see below).
  if (Meter && Meter->tripped())
    return;
  const FunctionIR *FIR = Prog->findFunction(Node->F);
  if (!FIR)
    return; // extern function: no body to expand
  std::vector<const CallInfo *> Calls;
  collectCalls(FIR->Body, Calls);
  for (const CallInfo *CI : Calls) {
    if (CI->isIndirect())
      continue; // left open; grown during points-to analysis (Sec. 5)
    if (!Prog->findFunction(CI->Callee))
      continue; // extern library function: modeled, not analyzed
    getOrCreateChild(Node, CI->CallSiteId, CI->Callee);
  }
}

IGNode *InvocationGraph::getOrCreateChild(IGNode *Parent, unsigned CallSiteId,
                                          const FunctionDecl *Callee) {
  IGNode *Child = nullptr;
  {
    // Insert-if-absent under the parent's stripe: a sequential run (or
    // the scheduler's disjoint-subtree dispatch) never contends, so the
    // uncontended try_lock is the whole cost; a contended acquisition
    // is recorded as a memo race.
    std::unique_lock<std::mutex> Lock(memoStripe(Parent), std::try_to_lock);
    if (!Lock.owns_lock()) {
      Ctrs.MemoRaces.fetch_add(1, std::memory_order_relaxed);
      Lock.lock();
    }

    if (IGNode *Hit = Parent->findChild(CallSiteId, Callee)) {
      Ctrs.ChildCacheHits.fetch_add(1, std::memory_order_relaxed);
      return Hit;
    }

    // Budget tripped: no new contexts. Hand out one shared canonical
    // node per callee; the analyzer evaluates it with merged summaries,
    // so sharing across call sites only merges contexts (sound).
    if (Meter && Meter->tripped()) {
      std::lock_guard<std::mutex> GLock(GrowthMu);
      ++Ctrs.CanonicalFallbacks;
      IGNode *&Canon = CanonicalNodes[Callee];
      if (!Canon) {
        Canon = makeNode(Callee, Root, CallSiteId);
        Root->Children.push_back(Canon);
      }
      return Canon;
    }

    {
      std::lock_guard<std::mutex> GLock(GrowthMu); // node ownership
      Child = makeNode(Callee, Parent, CallSiteId);
    }
    Parent->Children.push_back(Child);
    Parent->indexChild(CallSiteId, Callee, Child);

    // Recursion: the callee already appears on the invocation chain.
    // The new node is Approximate; its matching ancestor becomes
    // Recursive and the pair is connected by a back edge. The ancestor
    // chain (function, parent) is immutable after creation, so the walk
    // needs no locks.
    IGNode *Anc = const_cast<IGNode *>(
        Parent->F == Callee ? Parent : Parent->findAncestor(Callee));
    if (Anc) {
      Child->K = IGNode::Kind::Approximate;
      Child->RecEdge = Anc;
      if (!Anc->isRecursive())
        Ctrs.RecursivePromotions.fetch_add(1, std::memory_order_relaxed);
      Anc->markRecursive();
      return Child;
    }
  }
  // Eager direct-call expansion outside the stripe: the child's own
  // subtree acquires its own stripes (possibly this very one again).
  expandDirectCalls(Child);
  return Child;
}

IGNode *InvocationGraph::graftChild(IGNode *Parent, unsigned CallSiteId,
                                    const FunctionDecl *Callee,
                                    IGNode::Kind K, IGNode *RecEdge) {
  IGNode *Child = makeNode(Callee, Parent, CallSiteId);
  Parent->Children.push_back(Child);
  Parent->indexChild(CallSiteId, Callee, Child);
  Child->K = K;
  Child->RecEdge = RecEdge;
  return Child;
}

std::vector<const IGNode *> InvocationGraph::preorder() const {
  std::vector<const IGNode *> Out;
  Out.reserve(Nodes.size());
  forEachNode([&Out](const IGNode *N) { Out.push_back(N); });
  return Out;
}

unsigned InvocationGraph::numNodes() const {
  unsigned N = 0;
  forEachNode([&N](const IGNode *) { ++N; });
  return N;
}

unsigned InvocationGraph::numRecursive() const {
  unsigned N = 0;
  forEachNode([&N](const IGNode *Node) {
    if (Node->isRecursive())
      ++N;
  });
  return N;
}

unsigned InvocationGraph::numApproximate() const {
  unsigned N = 0;
  forEachNode([&N](const IGNode *Node) {
    if (Node->isApproximate())
      ++N;
  });
  return N;
}

unsigned InvocationGraph::numFunctionsCovered() const {
  std::map<const FunctionDecl *, bool> Seen;
  forEachNode([&Seen](const IGNode *Node) { Seen[Node->function()] = true; });
  return static_cast<unsigned>(Seen.size());
}
