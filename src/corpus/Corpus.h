//===- Corpus.h - Embedded benchmark programs -------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark corpus. The paper evaluates on 17 C programs (Table 2:
/// genetic, dry, clinpack, config, toplev, compress, mway, hash, misr,
/// xref, stanford, fixoutput, sim, travel, csuite, msc, lws) plus the
/// 'livc' Livermore-loops program for the function-pointer study. Those
/// sources are not redistributable, so this corpus provides miniature
/// stand-ins written to exhibit each program's pointer traits as
/// described in the paper (see DESIGN.md, substitution 2). Absolute
/// counts differ; table shapes are preserved.
///
/// An 18th, generated program ("incrstress") stresses the incremental
/// re-analysis engine: a deep direct-call tree whose invocation-graph
/// context count dwarfs its function count. It is synthetic, so it is
/// exempt from the paper-shape assertions in CorpusTest.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_CORPUS_CORPUS_H
#define MCPTA_CORPUS_CORPUS_H

#include <string>
#include <vector>

namespace mcpta {
namespace corpus {

struct CorpusProgram {
  const char *Name;
  const char *Description; // the paper's Table 2 description
  const char *Source;
};

/// The 17 Table 2 stand-ins in the paper's order, then incrstress.
const std::vector<CorpusProgram> &corpus();

/// Lookup by name; null if unknown.
const CorpusProgram *find(const std::string &Name);

} // namespace corpus
} // namespace mcpta

#endif // MCPTA_CORPUS_CORPUS_H
