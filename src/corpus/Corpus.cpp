//===- Corpus.cpp - Embedded benchmark programs -------------------------------===//

#include "corpus/Corpus.h"

using namespace mcpta;
using namespace mcpta::corpus;

// Every program is self-contained C in the accepted subset: no headers,
// library functions declared explicitly, structured control flow only.

static const char *const GeneticSrc = R"C(
int printf(char *fmt, ...);
void *malloc(int n);
int rand(void);

/* Genetic algorithm for sorting networks: tournament selection,
 * one-point crossover, mutation, and elitism over a heap-allocated
 * population of genomes accessed through row pointers. */

int POP = 16;
int GENES = 8;
int *population;
int *scratch;
int *fitness;

int *genome(int *pool, int idx) { return &pool[idx * 8]; }

void randomize(int *genes, int n, int seed) {
  int i;
  for (i = 0; i < n; i++)
    genes[i] = (seed * 31 + i * 17) % 32;
}

/* Fitness: how close to sorted the genome is. */
void eval(int *genes, int *fit, int n) {
  int i;
  int score;
  score = 0;
  for (i = 1; i < n; i++)
    if (genes[i - 1] <= genes[i])
      score = score + 1;
  *fit = score;
}

int tournament(int *fit, int n) {
  int a;
  int b;
  a = rand() % n;
  b = rand() % n;
  if (fit[a] >= fit[b])
    return a;
  return b;
}

void crossover(int *child, int *mom, int *dad, int n) {
  int cut;
  int i;
  cut = rand() % n;
  for (i = 0; i < n; i++) {
    if (i < cut)
      child[i] = mom[i];
    else
      child[i] = dad[i];
  }
}

void mutate(int *genes, int n) {
  int i;
  if (rand() % 4 != 0)
    return;
  i = rand() % n;
  genes[i] = rand() % 32;
}

int best(int *fit, int n) {
  int i;
  int bi;
  bi = 0;
  for (i = 1; i < n; i++)
    if (fit[i] > fit[bi])
      bi = i;
  return bi;
}

void copyGenome(int *dst, int *src, int n) {
  int i;
  for (i = 0; i < n; i++)
    dst[i] = src[i];
}

int main(void) {
  int gen;
  int i;
  int elite;
  int *mom;
  int *dad;
  int *child;
  int *tmp;

  population = (int *)malloc(POP * GENES * 4);
  scratch = (int *)malloc(POP * GENES * 4);
  fitness = (int *)malloc(POP * 4);

  for (i = 0; i < POP; i++)
    randomize(genome(population, i), GENES, i + 1);

  for (gen = 0; gen < 12; gen++) {
    for (i = 0; i < POP; i++)
      eval(genome(population, i), &fitness[i], GENES);
    elite = best(fitness, POP);
    copyGenome(genome(scratch, 0), genome(population, elite), GENES);
    for (i = 1; i < POP; i++) {
      mom = genome(population, tournament(fitness, POP));
      dad = genome(population, tournament(fitness, POP));
      child = genome(scratch, i);
      crossover(child, mom, dad, GENES);
      mutate(child, GENES);
    }
    tmp = population;
    population = scratch;
    scratch = tmp;
  }

  for (i = 0; i < POP; i++)
    eval(genome(population, i), &fitness[i], GENES);
  printf("best fitness %d\n", fitness[best(fitness, POP)]);
  return 0;
}
)C";

static const char *const DrySrc = R"C(
int printf(char *fmt, ...);
void *malloc(int n);
int strcmp(char *a, char *b);
char *strcpy(char *dst, char *src);

/* Dhrystone-style synthetic systems benchmark: records linked through
 * pointer components, by-value record assignment, enumerations, string
 * comparison, and a web of small procedures passing pointers. */

enum Enumeration { Ident1, Ident2, Ident3, Ident4, Ident5 };

struct Record {
  struct Record *PtrComp;
  int Discr;
  int EnumComp;
  int IntComp;
  char StringComp[31];
};

typedef struct Record *RecordPtr;

RecordPtr PtrGlb;
RecordPtr PtrGlbNext;
int IntGlob;
int BoolGlob;
char Char1Glob;
char Char2Glob;
int Array1Glob[32];
int Array2Glob[32][32];

int Func1(char ch1, char ch2) {
  char chLoc1;
  char chLoc2;
  chLoc1 = ch1;
  chLoc2 = chLoc1;
  if (chLoc2 != ch2)
    return Ident1;
  return Ident2;
}

int Func2(char *str1, char *str2) {
  int intLoc;
  char chLoc;
  intLoc = 1;
  chLoc = 'A';
  while (intLoc <= 1) {
    if (Func1(str1[intLoc], str2[intLoc + 1]) == Ident1) {
      chLoc = 'A';
      intLoc = intLoc + 1;
    } else {
      intLoc = intLoc + 1;
    }
  }
  if (chLoc >= 'W' && chLoc <= 'Z')
    intLoc = 7;
  if (chLoc == 'X')
    return 1;
  if (strcmp(str1, str2) > 0) {
    intLoc = intLoc + 7;
    return 1;
  }
  return 0;
}

int Func3(int enumParIn) {
  int enumLoc;
  enumLoc = enumParIn;
  if (enumLoc == Ident3)
    return 1;
  return 0;
}

void Proc8(int *array1Par, int (*array2Par)[32], int intParI1,
           int intParI2) {
  int intLoc;
  int intIndex;
  intLoc = intParI1 + 5;
  array1Par[intLoc] = intParI2;
  array1Par[intLoc + 1] = array1Par[intLoc];
  array1Par[intLoc + 30] = intLoc;
  for (intIndex = intLoc; intIndex <= intLoc + 1; intIndex++)
    array2Par[intLoc][intIndex] = intLoc;
  array2Par[intLoc][intLoc - 1] = array2Par[intLoc][intLoc - 1] + 1;
  array2Par[intLoc + 20][intLoc] = array1Par[intLoc];
  IntGlob = 5;
}

void Proc7(int intParI1, int intParI2, int *intParOut) {
  int intLoc;
  intLoc = intParI1 + 2;
  *intParOut = intParI2 + intLoc;
}

void Proc6(int enumParIn, int *enumParOut) {
  *enumParOut = enumParIn;
  if (!Func3(enumParIn))
    *enumParOut = Ident4;
  switch (enumParIn) {
  case Ident1:
    *enumParOut = Ident1;
    break;
  case Ident2:
    if (IntGlob > 100)
      *enumParOut = Ident1;
    else
      *enumParOut = Ident4;
    break;
  case Ident3:
    *enumParOut = Ident2;
    break;
  case Ident4:
    break;
  default:
    *enumParOut = Ident5;
    break;
  }
}

void Proc5(void) {
  Char1Glob = 'A';
  BoolGlob = 0;
}

void Proc4(void) {
  int boolLoc;
  boolLoc = Char1Glob == 'A';
  boolLoc = boolLoc | BoolGlob;
  Char2Glob = 'B';
}

void Proc3(RecordPtr *ptrParOut) {
  if (PtrGlb != NULL)
    *ptrParOut = PtrGlb->PtrComp;
  else
    IntGlob = 100;
  Proc7(10, IntGlob, &PtrGlb->IntComp);
}

void Proc2(int *intParIO) {
  int intLoc;
  int enumLoc;
  intLoc = *intParIO + 10;
  enumLoc = Ident2;
  while (1) {
    if (Char1Glob == 'A') {
      intLoc = intLoc - 1;
      *intParIO = intLoc - IntGlob;
      enumLoc = Ident1;
    }
    if (enumLoc == Ident1)
      break;
  }
}

void Proc1(RecordPtr ptrParIn) {
  RecordPtr nextRecord;
  nextRecord = ptrParIn->PtrComp;
  *nextRecord = *PtrGlb; /* whole-record assignment */
  ptrParIn->IntComp = 5;
  nextRecord->IntComp = ptrParIn->IntComp;
  nextRecord->PtrComp = ptrParIn->PtrComp;
  Proc3(&nextRecord->PtrComp);
  if (nextRecord->Discr == Ident1) {
    nextRecord->IntComp = 6;
    Proc6(ptrParIn->EnumComp, &nextRecord->EnumComp);
    nextRecord->PtrComp = PtrGlb->PtrComp;
    Proc7(nextRecord->IntComp, 10, &nextRecord->IntComp);
  } else {
    *ptrParIn = *nextRecord;
  }
}

int main(void) {
  int i;
  int intLoc1;
  int intLoc2;
  int intLoc3;
  char string1Loc[31];
  char string2Loc[31];

  PtrGlbNext = (RecordPtr)malloc(56);
  PtrGlb = (RecordPtr)malloc(56);
  PtrGlb->PtrComp = PtrGlbNext;
  PtrGlb->Discr = Ident1;
  PtrGlb->EnumComp = Ident3;
  PtrGlb->IntComp = 40;
  strcpy(PtrGlb->StringComp, "DHRYSTONE PROGRAM");
  strcpy(string1Loc, "DHRYSTONE PROGRAM, 1ST");
  Array2Glob[8][7] = 10;

  for (i = 0; i < 20; i++) {
    Proc5();
    Proc4();
    intLoc1 = 2;
    intLoc2 = 3;
    strcpy(string2Loc, "DHRYSTONE PROGRAM, 2ND");
    BoolGlob = !Func2(string1Loc, string2Loc);
    while (intLoc1 < intLoc2) {
      intLoc3 = 5 * intLoc1 - intLoc2;
      Proc7(intLoc1, intLoc2, &intLoc3);
      intLoc1 = intLoc1 + 1;
    }
    Proc8(Array1Glob, Array2Glob, intLoc1, intLoc3);
    Proc1(PtrGlb);
    if (Char2Glob == 'B')
      Proc2(&intLoc1);
  }
  printf("%d %d\n", IntGlob, intLoc1 + intLoc2);
  return 0;
}
)C";

static const char *const ClinpackSrc = R"C(
int printf(char *fmt, ...);

/* The C Linpack kernel: matgen / dgefa / dgesl with pivoting, built on
 * the BLAS-style daxpy/ddot/dscal/idamax primitives, all traversing
 * rows through pointers into a 2-D array. */

double aa[10][10];
double bb[10];
double xx[10];
int ipvt[10];

void daxpy(int n, double da, double *dx, double *dy) {
  int i;
  if (n <= 0)
    return;
  if (da == 0.0)
    return;
  for (i = 0; i < n; i++)
    dy[i] = dy[i] + da * dx[i];
}

double ddot(int n, double *dx, double *dy) {
  int i;
  double t;
  t = 0.0;
  for (i = 0; i < n; i++)
    t = t + dx[i] * dy[i];
  return t;
}

void dscal(int n, double da, double *dx) {
  int i;
  for (i = 0; i < n; i++)
    dx[i] = da * dx[i];
}

int idamax(int n, double *dx) {
  int i;
  int im;
  double dmax;
  double v;
  im = 0;
  dmax = dx[0] < 0.0 ? -dx[0] : dx[0];
  for (i = 1; i < n; i++) {
    v = dx[i] < 0.0 ? -dx[i] : dx[i];
    if (v > dmax) {
      dmax = v;
      im = i;
    }
  }
  return im;
}

double matgen(double a[10][10], int n, double *b) {
  int i;
  int j;
  int init;
  double norma;
  init = 1325;
  norma = 0.0;
  for (j = 0; j < n; j++)
    for (i = 0; i < n; i++) {
      init = (3125 * init) % 65536;
      a[j][i] = (init - 32768.0) / 16384.0;
      if (a[j][i] > norma)
        norma = a[j][i];
    }
  for (i = 0; i < n; i++)
    b[i] = 0.0;
  for (j = 0; j < n; j++)
    for (i = 0; i < n; i++)
      b[i] = b[i] + a[j][i];
  return norma;
}

int dgefa(double a[10][10], int n) {
  int info;
  int j;
  int k;
  int l;
  double t;
  info = 0;
  for (k = 0; k < n - 1; k++) {
    l = idamax(n - k, &a[k][k]) + k;
    ipvt[k] = l;
    if (a[k][l] == 0.0) {
      info = k;
      continue;
    }
    if (l != k) {
      t = a[k][l];
      a[k][l] = a[k][k];
      a[k][k] = t;
    }
    t = -1.0 / a[k][k];
    dscal(n - k - 1, t, &a[k][k + 1]);
    for (j = k + 1; j < n; j++) {
      t = a[j][l];
      if (l != k) {
        a[j][l] = a[j][k];
        a[j][k] = t;
      }
      daxpy(n - k - 1, t, &a[k][k + 1], &a[j][k + 1]);
    }
  }
  ipvt[n - 1] = n - 1;
  return info;
}

void dgesl(double a[10][10], int n, double *b) {
  int k;
  int l;
  double t;
  for (k = 0; k < n - 1; k++) {
    l = ipvt[k];
    t = b[l];
    if (l != k) {
      b[l] = b[k];
      b[k] = t;
    }
    daxpy(n - k - 1, t, &a[k][k + 1], &b[k + 1]);
  }
  for (k = n - 1; k >= 0; k--) {
    if (a[k][k] != 0.0)
      b[k] = b[k] / a[k][k];
    t = -b[k];
    daxpy(k, t, &a[k][0], &b[0]);
  }
}

double epslon(double x) {
  double a;
  double b;
  double c;
  double eps;
  a = 4.0 / 3.0;
  eps = 0.0;
  while (eps == 0.0) {
    b = a - 1.0;
    c = b + b + b;
    eps = c - 1.0;
    if (eps < 0.0)
      eps = -eps;
    a = a + eps; /* force progress under exact arithmetic */
  }
  return eps * (x < 0.0 ? -x : x);
}

int main(void) {
  int n;
  int i;
  double norma;
  double residn;
  n = 10;
  norma = matgen(aa, n, bb);
  dgefa(aa, n);
  dgesl(aa, n, bb);
  for (i = 0; i < n; i++)
    xx[i] = bb[i];
  residn = 0.0;
  for (i = 0; i < n; i++)
    residn = residn + xx[i];
  printf("norm %f resid %f eps %f\n", norma, residn, epslon(1.0));
  return 0;
}
)C";

static const char *const ConfigSrc = R"C(
int printf(char *fmt, ...);
void *malloc(int n);

/* A language-feature checker in the spirit of the original config
 * benchmark: one small routine per C feature, each recording a pass or
 * fail into a results table that the driver walks at the end. */

int results[24];
int nextSlot;

void record(int ok) {
  results[nextSlot] = ok;
  nextSlot = nextSlot + 1;
}

int checkArith(int a, int b) { return a + b * 2 - (a % (b + 1)); }
int checkShift(int a) { return (a << 2) | (a >> 1); }
int checkLogic(int a, int b) { return (a && b) || (!a && !b); }
int checkBits(int a, int b) { return (a & b) ^ (a | b); }
int checkCompare(int a, int b) {
  return (a < b) + (a <= b) + (a > b) + (a >= b) + (a == b) + (a != b);
}

int checkPtr(int *p) {
  if (p == NULL)
    return 0;
  return *p;
}

int checkPtrPtr(int **pp) {
  if (pp == NULL)
    return 0;
  return checkPtr(*pp);
}

int checkPtrPtrPtr(int ***ppp) {
  if (ppp == NULL)
    return 0;
  return checkPtrPtr(*ppp);
}

void bump(int *c) { *c = *c + 1; }

int checkArray(int *a, int n) {
  int i;
  int s;
  s = 0;
  for (i = 0; i < n; i++)
    s = s + a[i];
  return s;
}

int check2DArray(void) {
  int m[3][3];
  int i;
  int j;
  int s;
  for (i = 0; i < 3; i++)
    for (j = 0; j < 3; j++)
      m[i][j] = i * 3 + j;
  s = 0;
  for (i = 0; i < 3; i++)
    s = s + m[i][i];
  return s == 12;
}

struct Widget {
  int id;
  int *owner;
  struct Widget *peer;
};

int checkStruct(void) {
  int boss;
  struct Widget w1;
  struct Widget w2;
  boss = 9;
  w1.id = 1;
  w1.owner = &boss;
  w1.peer = &w2;
  w2 = w1;            /* struct assignment */
  w2.id = 2;
  return w1.peer->id == 2 && *w2.owner == 9;
}

union Cell {
  int asInt;
  char asChar;
};

int checkUnion(void) {
  union Cell c;
  c.asInt = 65;
  return c.asInt == 65;
}

typedef int (*BinOp)(int, int);

int opAdd(int a, int b) { return a + b; }
int opSub(int a, int b) { return a - b; }

int checkFnPtr(void) {
  BinOp ops[2];
  BinOp f;
  ops[0] = opAdd;
  ops[1] = opSub;
  f = ops[1];
  return f(10, 4) == 6 && ops[0](1, 2) == 3;
}

int checkSwitch(int x) {
  switch (x % 5) {
  case 0:
    return 1;
  case 1:
  case 2:
    return 2;
  case 3:
    return 4;
  default:
    return 8;
  }
}

int checkLoop(int n) {
  int i;
  int s;
  s = 0;
  i = 0;
  while (i < n) {
    s = s + i;
    i++;
    if (s > 100)
      break;
  }
  do {
    s = s - 1;
  } while (s > 50);
  for (i = n; i > 0; i--)
    if (i % 2 == 0)
      continue;
    else
      s = s + 1;
  return s;
}

int checkHeap(void) {
  int *cell;
  int **holder;
  cell = (int *)malloc(4);
  holder = (int **)malloc(8);
  *cell = 5;
  *holder = cell;
  return **holder == 5;
}

int checkRecursion(int n) {
  if (n <= 1)
    return 1;
  return n * checkRecursion(n - 1);
}

int checkString(void) {
  char *s;
  s = "config";
  return s[0] == 'c' && s[5] == 'g';
}

int main(void) {
  int x;
  int *p;
  int **pp;
  int ***ppp;
  int i;
  int passed;

  nextSlot = 0;
  x = 5;
  p = &x;
  pp = &p;
  ppp = &pp;

  record(checkArith(3, 4) == 10);
  record(checkShift(9) == 40);
  record(checkLogic(1, 1) == 1);
  record(checkBits(12, 10) == 6);
  record(checkCompare(1, 2) == 3);
  record(checkPtr(p) == 5);
  record(checkPtrPtr(pp) == 5);
  record(checkPtrPtrPtr(ppp) == 5);
  record(check2DArray());
  record(checkStruct());
  record(checkUnion());
  record(checkFnPtr());
  record(checkSwitch(x) == 1);
  record(checkLoop(20) > 0);
  record(checkHeap());
  record(checkRecursion(5) == 120);
  record(checkString());
  bump(&results[0]);

  passed = checkArray(results, nextSlot);
  printf("%d/%d features\n", passed, nextSlot);
  return passed;
}
)C";

static const char *const ToplevSrc = R"C(
int printf(char *fmt, ...);
char *strcpy(char *dst, char *src);
int strcmp(char *a, char *b);
int strlen(char *s);

/* Compiler-driver top level: option parsing through a table of handler
 * function pointers (the paper's array-of-pointers-initialization
 * case), a pass pipeline also dispatched through pointers, and a fake
 * file queue. */

int flagO;
int flagG;
int flagW;
int flagS;
int errorCount;
char currentFile[64];

int setO(char *arg) { flagO = arg[2] ? arg[2] - '0' : 1; return 0; }
int setG(char *arg) { flagG = 1; return 0; }
int setW(char *arg) { flagW = flagW + 1; return 0; }
int setS(char *arg) { flagS = 1; return 0; }
int setNone(char *arg) { errorCount = errorCount + 1; return 1; }

int (*handlers[5])(char *) = {setO, setG, setW, setS, setNone};
char *optNames[5] = {"-O", "-g", "-W", "-S", ""};

int dispatch(char *arg) {
  int i;
  int (*h)(char *);
  for (i = 0; i < 4; i++) {
    if (strcmp(arg, optNames[i]) == 0) {
      h = handlers[i];
      return h(arg);
    }
  }
  h = handlers[4];
  return h(arg);
}

/* The pass pipeline, also table-driven. */
int passCount;

int parsePass(char *file) { passCount = passCount + 1; return strlen(file); }
int simplifyPass(char *file) { passCount = passCount + 1; return 0; }
int analyzePass(char *file) { passCount = passCount + 1; return flagO; }
int emitPass(char *file) { passCount = passCount + 1; return flagS; }

int (*pipeline[4])(char *) = {parsePass, simplifyPass, analyzePass,
                              emitPass};

int compileFile(char *name) {
  int i;
  int rc;
  int (*pass)(char *);
  char *p;
  p = currentFile;
  strcpy(p, name);
  rc = 0;
  for (i = 0; i < 4; i++) {
    pass = pipeline[i];
    rc = rc + pass(p);
    if (errorCount > 3)
      break;
  }
  return rc;
}

char *queue[3] = {"main.c", "util.c", "tab.c"};
char *argvec[5] = {"-O", "-g", "-W", "-W", "-x"};

int main(void) {
  int i;
  int rc;
  for (i = 0; i < 5; i++)
    dispatch(argvec[i]); /* "-x" is unknown: handled by setNone */
  rc = 0;
  for (i = 0; i < 3; i++)
    rc = rc + compileFile(queue[i]);
  printf("O%d g%d W%d passes %d errors %d\n", flagO, flagG, flagW,
         passCount, errorCount);
  return rc > 0;
}
)C";

static const char *const CompressSrc = R"C(
int printf(char *fmt, ...);
void *malloc(int n);

/* LZW-flavoured compressor: open-addressed code table over heap
 * buffers, bit-oriented output through a cursor pointer, plus a
 * decompressor to verify the round trip. */

int HSIZE = 257;
long *htab;
int *codetab;
char *inbuf;
char *outbuf;
char *verify;
int inpos;
int inlen;
int outpos;
int freeCode;

void putCode(int code) {
  char *p;
  p = &outbuf[outpos];
  *p = (char)(code & 127);
  outpos = outpos + 1;
  p = &outbuf[outpos];
  *p = (char)((code >> 7) & 127);
  outpos = outpos + 1;
}

int getByte(void) {
  char *p;
  int c;
  if (inpos >= inlen)
    return -1;
  p = &inbuf[inpos];
  c = *p;
  inpos = inpos + 1;
  return c;
}

void clearTable(void) {
  int i;
  for (i = 0; i < HSIZE; i++) {
    htab[i] = -1;
    codetab[i] = 0;
  }
  freeCode = 256;
}

int probe(long key) {
  int h;
  int start;
  h = (int)((key * 31) % HSIZE);
  if (h < 0)
    h = -h;
  start = h;
  while (htab[h] != -1 && htab[h] != key) {
    h = h + 1;
    if (h >= HSIZE)
      h = 0;
    if (h == start)
      return -1;
  }
  return h;
}

int compress(void) {
  int c;
  long fcode;
  int ent;
  int slot;
  int emitted;
  emitted = 0;
  clearTable();
  ent = getByte();
  while (1) {
    c = getByte();
    if (c < 0)
      break;
    fcode = ((long)c << 16) + ent;
    slot = probe(fcode);
    if (slot >= 0 && htab[slot] == fcode) {
      ent = codetab[slot];
      continue;
    }
    putCode(ent);
    emitted = emitted + 1;
    if (slot >= 0 && freeCode < 4096) {
      htab[slot] = fcode;
      codetab[slot] = freeCode;
      freeCode = freeCode + 1;
    }
    ent = c;
  }
  putCode(ent);
  return emitted + 1;
}

void fill(char *buf, int n) {
  int i;
  for (i = 0; i < n; i++)
    buf[i] = (char)('a' + (i * 7) % 6); /* abcabc-ish, compressible */
}

int main(void) {
  int codes;
  htab = (long *)malloc(HSIZE * 8);
  codetab = (int *)malloc(HSIZE * 4);
  inbuf = (char *)malloc(256);
  outbuf = (char *)malloc(1024);
  verify = (char *)malloc(256);
  inlen = 96;
  fill(inbuf, inlen);
  inpos = 0;
  outpos = 0;
  codes = compress();
  printf("in %d codes %d out %d\n", inlen, codes, outpos);
  return 0;
}
)C";

static const char *const MwaySrc = R"C(
int printf(char *fmt, ...);

/* m-way graph partitioning: a Kernighan-Lin-flavoured pass over an
 * adjacency matrix, gain computation per node, greedy moves with a
 * tabu array, and a cut-size metric. */

int adj[24][24];
int weights[24];
int parts[24];
int gains[24];
int locked[24];
int N = 24;
int K = 4;

void buildGraph(void) {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    weights[i] = (i * 7) % 13 + 1;
    for (j = 0; j < N; j++)
      adj[i][j] = 0;
  }
  for (i = 0; i < N; i++) {
    adj[i][(i + 1) % N] = 1;
    adj[(i + 1) % N][i] = 1;
    adj[i][(i + 5) % N] = 1;
    adj[(i + 5) % N][i] = 1;
  }
}

void initParts(int *part, int n, int k) {
  int i;
  for (i = 0; i < n; i++)
    part[i] = i % k;
}

/* External minus internal connectivity of a node. */
int computeGain(int *part, int node) {
  int j;
  int g;
  g = 0;
  for (j = 0; j < N; j++) {
    if (!adj[node][j])
      continue;
    if (part[j] != part[node])
      g = g + 1;
    else
      g = g - 1;
  }
  return g;
}

int bestUnlocked(int *gain, int *lock, int n) {
  int i;
  int bi;
  bi = -1;
  for (i = 0; i < n; i++) {
    if (lock[i])
      continue;
    if (bi < 0 || gain[i] > gain[bi])
      bi = i;
  }
  return bi;
}

int targetPart(int *part, int node, int k) {
  int counts[8];
  int p;
  int j;
  int bestP;
  for (p = 0; p < k; p++)
    counts[p] = 0;
  for (j = 0; j < N; j++)
    if (adj[node][j])
      counts[part[j]] = counts[part[j]] + 1;
  bestP = part[node];
  for (p = 0; p < k; p++)
    if (p != part[node] && counts[p] > counts[bestP])
      bestP = p;
  return bestP;
}

void pass(int *part, int *gain, int *lock) {
  int moves;
  int node;
  for (node = 0; node < N; node++)
    lock[node] = 0;
  for (moves = 0; moves < N / 2; moves++) {
    for (node = 0; node < N; node++)
      gain[node] = computeGain(part, node);
    node = bestUnlocked(gain, lock, N);
    if (node < 0 || gain[node] <= 0)
      break;
    part[node] = targetPart(part, node, K);
    lock[node] = 1;
  }
}

int cutSize(int *part) {
  int i;
  int j;
  int cut;
  cut = 0;
  for (i = 0; i < N; i++)
    for (j = i + 1; j < N; j++)
      if (adj[i][j] && part[i] != part[j])
        cut = cut + 1;
  return cut;
}

int main(void) {
  int p;
  int before;
  int after;
  buildGraph();
  initParts(parts, N, K);
  before = cutSize(parts);
  for (p = 0; p < 6; p++)
    pass(parts, gains, locked);
  after = cutSize(parts);
  printf("cut %d -> %d\n", before, after);
  return after <= before ? 0 : 1;
}
)C";

static const char *const HashSrc = R"C(
int printf(char *fmt, ...);
void *malloc(int n);
int strcmp(char *a, char *b);
int strlen(char *s);

/* Chained hash table with insert / lookup / remove / iterate, a
 * resize-like rehash into a second bucket array, and collision
 * statistics — the classic heap-pointer workload. */

struct Entry {
  char *key;
  int value;
  struct Entry *next;
};

struct Entry *table[16];
struct Entry *big[32];
int population;

int hash(char *key, int buckets) {
  int h;
  char *p;
  h = 0;
  p = key;
  while (*p != '\0') {
    h = h * 31 + *p;
    p = p + 1;
  }
  if (h < 0)
    h = -h;
  return h % buckets;
}

struct Entry *lookup(char *key) {
  struct Entry *e;
  e = table[hash(key, 16)];
  while (e != NULL) {
    if (strcmp(e->key, key) == 0)
      return e;
    e = e->next;
  }
  return NULL;
}

void insert(char *key, int value) {
  struct Entry *e;
  int h;
  e = lookup(key);
  if (e != NULL) {
    e->value = value;
    return;
  }
  e = (struct Entry *)malloc(24);
  h = hash(key, 16);
  e->key = key;
  e->value = value;
  e->next = table[h];
  table[h] = e;
  population = population + 1;
}

int removeKey(char *key) {
  struct Entry *e;
  struct Entry *prev;
  int h;
  h = hash(key, 16);
  e = table[h];
  prev = NULL;
  while (e != NULL) {
    if (strcmp(e->key, key) == 0) {
      if (prev == NULL)
        table[h] = e->next;
      else
        prev->next = e->next;
      population = population - 1;
      return 1;
    }
    prev = e;
    e = e->next;
  }
  return 0;
}

int sumValues(void) {
  int h;
  int s;
  struct Entry *e;
  s = 0;
  for (h = 0; h < 16; h++) {
    e = table[h];
    while (e != NULL) {
      s = s + e->value;
      e = e->next;
    }
  }
  return s;
}

int longestChain(void) {
  int h;
  int len;
  int maxLen;
  struct Entry *e;
  maxLen = 0;
  for (h = 0; h < 16; h++) {
    len = 0;
    e = table[h];
    while (e != NULL) {
      len = len + 1;
      e = e->next;
    }
    if (len > maxLen)
      maxLen = len;
  }
  return maxLen;
}

/* Rehash everything into the wider bucket array. */
void rehash(void) {
  int h;
  int nh;
  struct Entry *e;
  struct Entry *next;
  for (h = 0; h < 32; h++)
    big[h] = NULL;
  for (h = 0; h < 16; h++) {
    e = table[h];
    while (e != NULL) {
      next = e->next;
      nh = hash(e->key, 32);
      e->next = big[nh];
      big[nh] = e;
      e = next;
    }
    table[h] = NULL;
  }
}

char *words[10] = {"alpha", "beta", "gamma", "delta", "epsilon",
                   "zeta",  "eta",  "theta", "iota",  "kappa"};

int main(void) {
  int i;
  struct Entry *e;
  population = 0;
  for (i = 0; i < 10; i++)
    insert(words[i], i + 1);
  insert("alpha", 100); /* update in place */
  removeKey("zeta");
  e = lookup("gamma");
  if (e == NULL)
    return 1;
  printf("pop %d sum %d chain %d gamma %d\n", population, sumValues(),
         longestChain(), e->value);
  rehash();
  return 0;
}
)C";

static const char *const MisrSrc = R"C(
int printf(char *fmt, ...);
void *malloc(int n);

/* Multiple-input signature registers: two linked shift registers fed
 * the same bit stream with injected faults in one; their signatures are
 * compared to see whether the errors cancelled (the aliasing question
 * the original benchmark poses). */

struct Cell {
  int bit;
  struct Cell *next;
};

struct Cell *misr1;
struct Cell *misr2;
int faultsInjected;

struct Cell *makeMisr(int n) {
  struct Cell *head;
  struct Cell *c;
  int i;
  head = NULL;
  for (i = 0; i < n; i++) {
    c = (struct Cell *)malloc(16);
    c->bit = 0;
    c->next = head;
    head = c;
  }
  return head;
}

void shift(struct Cell *m, int in) {
  struct Cell *c;
  int carry;
  int t;
  c = m;
  carry = in;
  while (c != NULL) {
    t = c->bit;
    c->bit = carry ^ t;
    carry = t;
    c = c->next;
  }
}

/* Feedback tap: xor the last bit back into the first. */
void feedback(struct Cell *m) {
  struct Cell *c;
  struct Cell *last;
  c = m;
  last = m;
  while (c != NULL) {
    last = c;
    c = c->next;
  }
  if (last != NULL && m != NULL)
    m->bit = m->bit ^ last->bit;
}

void inject(struct Cell *m, int pos) {
  struct Cell *c;
  int i;
  c = m;
  for (i = 0; i < pos && c != NULL; i++)
    c = c->next;
  if (c != NULL) {
    c->bit = c->bit ^ 1;
    faultsInjected = faultsInjected + 1;
  }
}

int signature(struct Cell *m) {
  struct Cell *c;
  int sig;
  c = m;
  sig = 0;
  while (c != NULL) {
    sig = sig * 2 + c->bit;
    c = c->next;
  }
  return sig;
}

int compare(struct Cell *a, struct Cell *b) {
  while (a != NULL && b != NULL) {
    if (a->bit != b->bit)
      return 0;
    a = a->next;
    b = b->next;
  }
  return a == NULL && b == NULL;
}

int main(void) {
  int i;
  misr1 = makeMisr(16);
  misr2 = makeMisr(16);
  faultsInjected = 0;
  for (i = 0; i < 48; i++) {
    shift(misr1, i & 1);
    shift(misr2, i & 1);
    feedback(misr1);
    feedback(misr2);
    if (i % 12 == 5) {
      inject(misr2, i % 16);       /* fault... */
      inject(misr2, (i + 6) % 16); /* ...and a second that may cancel */
    }
  }
  printf("faults %d sig1 %d sig2 %d equal %d\n", faultsInjected,
         signature(misr1), signature(misr2), compare(misr1, misr2));
  return 0;
}
)C";

static const char *const XrefSrc = R"C(
int printf(char *fmt, ...);
void *malloc(int n);
int strcmp(char *a, char *b);

/* Cross-reference builder: a binary search tree of words, each node
 * carrying a linked list of line numbers; recursive insertion, an
 * in-order walk, depth measurement, and a lookup path. */

struct LineRef {
  int line;
  struct LineRef *next;
};

struct Node {
  char *word;
  int count;
  struct LineRef *lines;
  struct Node *left;
  struct Node *right;
};

struct Node *root;
int distinctWords;

struct LineRef *newLine(int line, struct LineRef *next) {
  struct LineRef *l;
  l = (struct LineRef *)malloc(16);
  l->line = line;
  l->next = next;
  return l;
}

struct Node *addTree(struct Node *p, char *w, int line) {
  int cond;
  if (p == NULL) {
    p = (struct Node *)malloc(48);
    p->word = w;
    p->count = 1;
    p->lines = newLine(line, NULL);
    p->left = NULL;
    p->right = NULL;
    distinctWords = distinctWords + 1;
    return p;
  }
  cond = strcmp(w, p->word);
  if (cond == 0) {
    p->count = p->count + 1;
    p->lines = newLine(line, p->lines);
  } else if (cond < 0) {
    p->left = addTree(p->left, w, line);
  } else {
    p->right = addTree(p->right, w, line);
  }
  return p;
}

int treeDepth(struct Node *p) {
  int l;
  int r;
  if (p == NULL)
    return 0;
  l = treeDepth(p->left);
  r = treeDepth(p->right);
  if (l > r)
    return l + 1;
  return r + 1;
}

int countRefs(struct Node *p) {
  int n;
  struct LineRef *l;
  if (p == NULL)
    return 0;
  n = countRefs(p->left) + countRefs(p->right);
  l = p->lines;
  while (l != NULL) {
    n = n + 1;
    l = l->next;
  }
  return n;
}

struct Node *find(struct Node *p, char *w) {
  int cond;
  while (p != NULL) {
    cond = strcmp(w, p->word);
    if (cond == 0)
      return p;
    if (cond < 0)
      p = p->left;
    else
      p = p->right;
  }
  return NULL;
}

void treePrint(struct Node *p) {
  if (p != NULL) {
    treePrint(p->left);
    printf("%4d %s\n", p->count, p->word);
    treePrint(p->right);
  }
}

char *text[12] = {"the",  "quick", "brown", "fox", "jumps", "over",
                  "the",  "lazy",  "dog",   "the", "quick", "fox"};

int main(void) {
  int i;
  struct Node *hit;
  root = NULL;
  distinctWords = 0;
  for (i = 0; i < 12; i++)
    root = addTree(root, text[i], i + 1);
  treePrint(root);
  hit = find(root, "fox");
  if (hit == NULL)
    return 1;
  printf("words %d depth %d refs %d fox %d\n", distinctWords,
         treeDepth(root), countRefs(root), hit->count);
  return 0;
}
)C";

static const char *const StanfordSrc = R"C(
int printf(char *fmt, ...);

/* The Stanford "baby benchmarks": perm, towers, queens, intmm, bubble,
 * quicksort and a tree walk, sharing global state like the original. */

int permArray[11];
int permCount;
int towersMoves;
int queensCount;
int sortList[32];
int sortSize;
int imA[8][8];
int imB[8][8];
int imR[8][8];

void swap(int *a, int *b) {
  int t;
  t = *a;
  *a = *b;
  *b = t;
}

/* ------- perm ------- */
void permute(int n) {
  int k;
  permCount = permCount + 1;
  if (n != 1) {
    permute(n - 1);
    for (k = n - 1; k >= 1; k--) {
      swap(&permArray[n], &permArray[k]);
      permute(n - 1);
      swap(&permArray[n], &permArray[k]);
    }
  }
}

/* ------- towers ------- */
void towers(int from, int to, int n) {
  int other;
  if (n == 1) {
    towersMoves = towersMoves + 1;
    return;
  }
  other = 6 - from - to;
  towers(from, other, n - 1);
  towersMoves = towersMoves + 1;
  towers(other, to, n - 1);
}

/* ------- queens ------- */
int place(int *cols, int row, int n) {
  int i;
  for (i = 0; i < row; i++)
    if (cols[i] == n || cols[i] - n == row - i || n - cols[i] == row - i)
      return 0;
  return 1;
}

void queens(int *cols, int row) {
  int c;
  if (row == 6) {
    queensCount = queensCount + 1;
    return;
  }
  for (c = 0; c < 6; c++)
    if (place(cols, row, c)) {
      cols[row] = c;
      queens(cols, row + 1);
    }
}

/* ------- intmm ------- */
void initMatrix(int m[8][8], int seed) {
  int i;
  int j;
  for (i = 0; i < 8; i++)
    for (j = 0; j < 8; j++)
      m[i][j] = (i * seed + j) % 7 - 3;
}

void innerProduct(int *result, int a[8][8], int b[8][8], int row,
                  int col) {
  int k;
  *result = 0;
  for (k = 0; k < 8; k++)
    *result = *result + a[row][k] * b[k][col];
}

void intmm(void) {
  int i;
  int j;
  initMatrix(imA, 3);
  initMatrix(imB, 5);
  for (i = 0; i < 8; i++)
    for (j = 0; j < 8; j++)
      innerProduct(&imR[i][j], imA, imB, i, j);
}

/* ------- bubble ------- */
void initList(int n) {
  int i;
  sortSize = n;
  for (i = 0; i < n; i++)
    sortList[i] = (i * 13 + 7) % 31;
}

void bubble(void) {
  int i;
  int top;
  top = sortSize - 1;
  while (top > 0) {
    i = 0;
    while (i < top) {
      if (sortList[i] > sortList[i + 1])
        swap(&sortList[i], &sortList[i + 1]);
      i = i + 1;
    }
    top = top - 1;
  }
}

/* ------- quicksort ------- */
void quickSort(int *a, int lo, int hi) {
  int i;
  int j;
  int pivot;
  i = lo;
  j = hi;
  pivot = a[(lo + hi) / 2];
  while (i <= j) {
    while (a[i] < pivot)
      i = i + 1;
    while (pivot < a[j])
      j = j - 1;
    if (i <= j) {
      swap(&a[i], &a[j]);
      i = i + 1;
      j = j - 1;
    }
  }
  if (lo < j)
    quickSort(a, lo, j);
  if (i < hi)
    quickSort(a, i, hi);
}

int checkSorted(int *a, int n) {
  int i;
  for (i = 1; i < n; i++)
    if (a[i - 1] > a[i])
      return 0;
  return 1;
}

int main(void) {
  int i;
  int cols[8];
  int ok;

  for (i = 0; i <= 10; i++)
    permArray[i] = i;
  permCount = 0;
  permute(5);

  towersMoves = 0;
  towers(1, 3, 8);

  queensCount = 0;
  queens(cols, 0);

  intmm();

  initList(24);
  bubble();
  ok = checkSorted(sortList, sortSize);

  initList(24);
  quickSort(sortList, 0, sortSize - 1);
  ok = ok + checkSorted(sortList, sortSize);

  printf("%d %d %d %d %d\n", permCount, towersMoves, queensCount,
         imR[0][0], ok);
  return ok;
}
)C";

static const char *const FixoutputSrc = R"C(
int printf(char *fmt, ...);
int strlen(char *s);

/* Stream translator: tab expansion, run-length squeezing of blanks,
 * line splitting at a fixed width, and a histogram of character
 * classes — buffer-to-buffer pointer walks throughout. */

char input[160];
char output[320];
int classCounts[4]; /* letters, digits, blanks, other */

int isLetter(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
int isDigit(char c) { return c >= '0' && c <= '9'; }

void classify(char *in) {
  char *p;
  p = in;
  while (*p != '\0') {
    if (isLetter(*p))
      classCounts[0] = classCounts[0] + 1;
    else if (isDigit(*p))
      classCounts[1] = classCounts[1] + 1;
    else if (*p == ' ' || *p == '\t')
      classCounts[2] = classCounts[2] + 1;
    else
      classCounts[3] = classCounts[3] + 1;
    p = p + 1;
  }
}

/* Tabs become two spaces; runs of blanks collapse to one. */
int translate(char *in, char *out) {
  char *p;
  char *q;
  int pendingBlank;
  int n;
  p = in;
  q = out;
  pendingBlank = 0;
  n = 0;
  while (*p != '\0') {
    if (*p == '\t' || *p == ' ') {
      pendingBlank = 1;
    } else {
      if (pendingBlank) {
        *q = ' ';
        q = q + 1;
        pendingBlank = 0;
      }
      *q = *p;
      q = q + 1;
    }
    p = p + 1;
    n = n + 1;
  }
  *q = '\0';
  return n;
}

/* Insert newlines so no line exceeds width. */
int wrap(char *buf, int width) {
  char *p;
  int col;
  int lines;
  p = buf;
  col = 0;
  lines = 1;
  while (*p != '\0') {
    if (col >= width && *p == ' ') {
      *p = '\n';
      col = 0;
      lines = lines + 1;
    }
    col = col + 1;
    p = p + 1;
  }
  return lines;
}

void fill(char *buf, int n) {
  int i;
  for (i = 0; i < n; i++) {
    if (i % 11 == 3)
      buf[i] = '\t';
    else if (i % 7 == 2)
      buf[i] = ' ';
    else if (i % 5 == 0)
      buf[i] = (char)('0' + i % 10);
    else
      buf[i] = (char)('a' + i % 26);
  }
  buf[n] = '\0';
}

int main(void) {
  int n;
  int lines;
  fill(input, 140);
  classify(input);
  n = translate(input, output);
  lines = wrap(output, 20);
  printf("%d in, %d out, %d lines, classes %d/%d/%d/%d\n", n,
         strlen(output), lines, classCounts[0], classCounts[1],
         classCounts[2], classCounts[3]);
  return 0;
}
)C";

static const char *const SimSrc = R"C(
int printf(char *fmt, ...);
void *malloc(int n);

/* Local-similarity alignment with affine gap weights: a dynamic
 * program over heap-allocated score/gap matrices (int** rows), plus a
 * traceback that walks the matrices backwards through row pointers. */

int **score;
int **gapA;
int **gapB;
char *seqA;
char *seqB;
int lenA;
int lenB;
int bestI;
int bestJ;

int maxOf(int a, int b, int c) {
  int m;
  m = a;
  if (b > m)
    m = b;
  if (c > m)
    m = c;
  return m;
}

int **allocMatrix(int rows, int cols) {
  int **m;
  int i;
  int j;
  m = (int **)malloc(rows * 8);
  for (i = 0; i < rows; i++) {
    m[i] = (int *)malloc(cols * 4);
    for (j = 0; j < cols; j++)
      m[i][j] = 0;
  }
  return m;
}

int substScore(char a, char b) {
  if (a == b)
    return 2;
  return -1;
}

int similarity(void) {
  int i;
  int j;
  int best;
  int *row;
  int *prev;
  int *ga;
  int *gb;
  best = 0;
  for (i = 1; i <= lenA; i++) {
    row = score[i];
    prev = score[i - 1];
    ga = gapA[i];
    gb = gapB[i];
    for (j = 1; j <= lenB; j++) {
      /* affine gaps: opening costs 3, extending costs 1 */
      ga[j] = maxOf(gapA[i - 1][j] - 1, prev[j] - 3, 0);
      gb[j] = maxOf(gb[j - 1] - 1, row[j - 1] - 3, 0);
      row[j] = maxOf(prev[j - 1] + substScore(seqA[i - 1], seqB[j - 1]),
                     ga[j], gb[j]);
      if (row[j] < 0)
        row[j] = 0;
      if (row[j] > best) {
        best = row[j];
        bestI = i;
        bestJ = j;
      }
    }
  }
  return best;
}

int traceback(void) {
  int i;
  int j;
  int steps;
  i = bestI;
  j = bestJ;
  steps = 0;
  while (i > 0 && j > 0 && score[i][j] > 0) {
    if (score[i][j] ==
        score[i - 1][j - 1] + substScore(seqA[i - 1], seqB[j - 1])) {
      i = i - 1;
      j = j - 1;
    } else if (score[i][j] == gapA[i][j]) {
      i = i - 1;
    } else {
      j = j - 1;
    }
    steps = steps + 1;
    if (steps > 64)
      break;
  }
  return steps;
}

int main(void) {
  int i;
  int best;
  lenA = 14;
  lenB = 12;
  seqA = (char *)malloc(lenA + 1);
  seqB = (char *)malloc(lenB + 1);
  for (i = 0; i < lenA; i++)
    seqA[i] = (char)('a' + i % 4);
  for (i = 0; i < lenB; i++)
    seqB[i] = (char)('a' + i % 3);
  score = allocMatrix(lenA + 1, lenB + 1);
  gapA = allocMatrix(lenA + 1, lenB + 1);
  gapB = allocMatrix(lenA + 1, lenB + 1);
  best = similarity();
  printf("sim %d trace %d\n", best, traceback());
  return 0;
}
)C";

static const char *const TravelSrc = R"C(
int printf(char *fmt, ...);
void *malloc(int n);

/* Travelling salesman with greedy construction and a 2-opt improvement
 * pass: structs with coordinates, pointers into the city table, and a
 * tour permutation refined in place. */

struct City {
  int x;
  int y;
  int visited;
};

struct City cities[14];
int tour[14];
int numCities;

int dist(struct City *a, struct City *b) {
  int dx;
  int dy;
  dx = a->x - b->x;
  dy = a->y - b->y;
  if (dx < 0)
    dx = -dx;
  if (dy < 0)
    dy = -dy;
  return dx + dy;
}

int nearest(struct City *from) {
  int i;
  int bi;
  int bd;
  int d;
  struct City *c;
  bi = -1;
  bd = 1000000;
  for (i = 0; i < numCities; i++) {
    c = &cities[i];
    if (c->visited)
      continue;
    d = dist(from, c);
    if (d < bd) {
      bd = d;
      bi = i;
    }
  }
  return bi;
}

int tourLength(int *t) {
  int i;
  int total;
  total = 0;
  for (i = 1; i < numCities; i++)
    total = total + dist(&cities[t[i - 1]], &cities[t[i]]);
  total = total + dist(&cities[t[numCities - 1]], &cities[t[0]]);
  return total;
}

int greedyTour(void) {
  int step;
  int cur;
  int next;
  struct City *cc;
  cur = 0;
  cities[0].visited = 1;
  tour[0] = 0;
  for (step = 1; step < numCities; step++) {
    cc = &cities[cur];
    next = nearest(cc);
    if (next < 0)
      break;
    cities[next].visited = 1;
    tour[step] = next;
    cur = next;
  }
  return tourLength(tour);
}

void reverseSegment(int *t, int from, int to) {
  int tmp;
  while (from < to) {
    tmp = t[from];
    t[from] = t[to];
    t[to] = tmp;
    from = from + 1;
    to = to - 1;
  }
}

int twoOpt(void) {
  int improved;
  int rounds;
  int i;
  int j;
  int before;
  int after;
  rounds = 0;
  improved = 1;
  while (improved && rounds < 8) {
    improved = 0;
    rounds = rounds + 1;
    for (i = 1; i < numCities - 1; i++)
      for (j = i + 1; j < numCities; j++) {
        before = tourLength(tour);
        reverseSegment(tour, i, j);
        after = tourLength(tour);
        if (after < before)
          improved = 1;
        else
          reverseSegment(tour, i, j); /* undo */
      }
  }
  return tourLength(tour);
}

int main(void) {
  int i;
  int greedy;
  int optimized;
  numCities = 14;
  for (i = 0; i < numCities; i++) {
    cities[i].x = (i * 17) % 31;
    cities[i].y = (i * 23) % 29;
    cities[i].visited = 0;
  }
  greedy = greedyTour();
  optimized = twoOpt();
  printf("greedy %d 2opt %d\n", greedy, optimized);
  return optimized <= greedy;
}
)C";

static const char *const CsuiteSrc = R"C(
int printf(char *fmt, ...);

/* Vectorizer test-suite kernels: the loop patterns compilers probe for
 * (streams, reductions, recurrences, conditionals, strides, gathers,
 * stencils), each its own routine over shared vectors. */

double va[32];
double vb[32];
double vc[32];
double vd[32];
int idx[32];

void streamAdd(double *a, double *b, int n) {
  int i;
  for (i = 0; i < n; i++)
    a[i] = b[i] + 1.0;
}
void streamMul(double *a, double *b, double *c, int n) {
  int i;
  for (i = 0; i < n; i++)
    a[i] = b[i] * c[i];
}
void triad(double *a, double *b, double *c, double s, int n) {
  int i;
  for (i = 0; i < n; i++)
    a[i] = b[i] + s * c[i];
}
void prefixSum(double *a, double *b, int n) {
  int i;
  for (i = 1; i < n; i++)
    a[i] = a[i - 1] + b[i];
}
void recurrence(double *a, int n) {
  int i;
  for (i = 2; i < n; i++)
    a[i] = a[i - 1] * 0.5 + a[i - 2] * 0.25;
}
void conditionalCopy(double *a, double *b, int n) {
  int i;
  for (i = 0; i < n; i++)
    if (b[i] > 0.0)
      a[i] = b[i];
}
void strided(double *a, double *b, int n) {
  int i;
  for (i = 0; i < n / 2; i++)
    a[i * 2] = b[i * 2 + 1];
}
void gather(double *a, double *b, int *index, int n) {
  int i;
  for (i = 0; i < n; i++)
    a[i] = b[index[i]];
}
void scatter(double *a, double *b, int *index, int n) {
  int i;
  for (i = 0; i < n; i++)
    a[index[i]] = b[i];
}
void stencil3(double *a, double *b, int n) {
  int i;
  for (i = 1; i < n - 1; i++)
    a[i] = (b[i - 1] + b[i] + b[i + 1]) / 3.0;
}
void reverse(double *a, double *b, int n) {
  int i;
  for (i = 0; i < n; i++)
    a[i] = b[n - 1 - i];
}
double reduceSum(double *a, int n) {
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < n; i++)
    s = s + a[i];
  return s;
}
double reduceMax(double *a, int n) {
  int i;
  double m;
  m = a[0];
  for (i = 1; i < n; i++)
    if (a[i] > m)
      m = a[i];
  return m;
}
int countPositive(double *a, int n) {
  int i;
  int c;
  c = 0;
  for (i = 0; i < n; i++)
    if (a[i] > 0.0)
      c = c + 1;
  return c;
}

int main(void) {
  int i;
  for (i = 0; i < 32; i++) {
    va[i] = i;
    vb[i] = 32 - i;
    vc[i] = 1.0;
    vd[i] = 0.0;
    idx[i] = (i * 5) % 32;
  }
  streamAdd(va, vb, 32);
  streamMul(vc, va, vb, 32);
  triad(vd, va, vb, 0.5, 32);
  prefixSum(va, vc, 32);
  recurrence(vb, 32);
  conditionalCopy(vc, va, 32);
  strided(vd, va, 32);
  gather(va, vb, idx, 32);
  scatter(vb, vc, idx, 32);
  stencil3(vc, vd, 32);
  reverse(vd, va, 32);
  printf("%f %f %d\n", reduceSum(vc, 32), reduceMax(vd, 32),
         countPositive(vb, 32));
  return 0;
}
)C";

static const char *const MscSrc = R"C(
int printf(char *fmt, ...);
double sqrt(double x);

/* Minimum spanning circle: circles from 2 and 3 support points,
 * candidate enumeration with containment checks, and a convex-hull
 * style preprocessing pass — geometry through struct pointers. */

struct Point {
  double x;
  double y;
};

struct Point pts[16];
int npts;

double sq(double v) { return v * v; }

double dist2(struct Point *a, struct Point *b) {
  return sq(a->x - b->x) + sq(a->y - b->y);
}

void circleFrom2(struct Point *a, struct Point *b, struct Point *center,
                 double *r2) {
  center->x = (a->x + b->x) / 2.0;
  center->y = (a->y + b->y) / 2.0;
  *r2 = dist2(a, b) / 4.0;
}

/* Circumcircle of three points (degenerate triangles fall back to the
 * widest 2-point circle). */
int circleFrom3(struct Point *a, struct Point *b, struct Point *c,
                struct Point *center, double *r2) {
  double d;
  double ax;
  double ay;
  double bx;
  double by;
  double cx;
  double cy;
  ax = a->x;
  ay = a->y;
  bx = b->x;
  by = b->y;
  cx = c->x;
  cy = c->y;
  d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by));
  if (d < 0.000001 && d > -0.000001)
    return 0;
  center->x = ((ax * ax + ay * ay) * (by - cy) +
               (bx * bx + by * by) * (cy - ay) +
               (cx * cx + cy * cy) * (ay - by)) /
              d;
  center->y = ((ax * ax + ay * ay) * (cx - bx) +
               (bx * bx + by * by) * (ax - cx) +
               (cx * cx + cy * cy) * (bx - ax)) /
              d;
  *r2 = dist2(a, center);
  return 1;
}

int inside(struct Point *p, struct Point *center, double r2) {
  return dist2(p, center) <= r2 + 0.0001;
}

int allInside(struct Point *center, double r2) {
  int k;
  for (k = 0; k < npts; k++)
    if (!inside(&pts[k], center, r2))
      return 0;
  return 1;
}

double minCircle(struct Point *bestCenter) {
  int i;
  int j;
  int k;
  double best;
  double r2;
  struct Point center;
  best = 1000000.0;
  for (i = 0; i < npts; i++)
    for (j = i + 1; j < npts; j++) {
      circleFrom2(&pts[i], &pts[j], &center, &r2);
      if (allInside(&center, r2) && r2 < best) {
        best = r2;
        *bestCenter = center;
      }
      for (k = j + 1; k < npts; k++) {
        if (!circleFrom3(&pts[i], &pts[j], &pts[k], &center, &r2))
          continue;
        if (allInside(&center, r2) && r2 < best) {
          best = r2;
          *bestCenter = center;
        }
      }
    }
  return best;
}

/* Farthest pair gives a lower bound on the circle diameter. */
double farthestPair(void) {
  int i;
  int j;
  double d;
  double best;
  best = 0.0;
  for (i = 0; i < npts; i++)
    for (j = i + 1; j < npts; j++) {
      d = dist2(&pts[i], &pts[j]);
      if (d > best)
        best = d;
    }
  return best;
}

int main(void) {
  int i;
  double r2;
  double bound;
  struct Point center;
  npts = 10;
  for (i = 0; i < npts; i++) {
    pts[i].x = (i * 13) % 17;
    pts[i].y = (i * 7) % 11;
  }
  r2 = minCircle(&center);
  bound = farthestPair() / 4.0;
  printf("r %f center (%f,%f) bound ok %d\n", sqrt(r2), center.x,
         center.y, r2 >= bound - 0.001);
  return 0;
}
)C";

static const char *const LwsSrc = R"C(
int printf(char *fmt, ...);
double sqrt(double x);

/* Flexible-water-molecule dynamics in the style of lws: predict /
 * intra-force / inter-force / correct / bound steps over an array of
 * molecule records, every kernel reaching the coordinates through
 * pointer parameters. */

int NMOL = 8;

struct Molecule {
  double pos[3][3]; /* three atoms x three coordinates */
  double vel[3][3];
  double acc[3][3];
  double force[3][3];
};

struct Molecule water[8];
double boxSize = 10.0;
double potential;
double kineticE;

void zeroForces(struct Molecule *mol) {
  int a;
  int d;
  for (a = 0; a < 3; a++)
    for (d = 0; d < 3; d++)
      mol->force[a][d] = 0.0;
}

/* Taylor-series predictor over positions and velocities. */
void predict(struct Molecule *mol, double dt) {
  int a;
  int d;
  for (a = 0; a < 3; a++)
    for (d = 0; d < 3; d++) {
      mol->pos[a][d] = mol->pos[a][d] + dt * mol->vel[a][d] +
                       dt * dt * mol->acc[a][d] / 2.0;
      mol->vel[a][d] = mol->vel[a][d] + dt * mol->acc[a][d];
    }
}

void intraForce(struct Molecule *mol) {
  int d;
  double *o;
  double *h1;
  double *h2;
  double stretch1;
  double stretch2;
  o = &mol->pos[0][0];
  h1 = &mol->pos[1][0];
  h2 = &mol->pos[2][0];
  for (d = 0; d < 3; d++) {
    stretch1 = o[d] - h1[d];
    stretch2 = o[d] - h2[d];
    mol->force[0][d] = mol->force[0][d] - 0.1 * (stretch1 + stretch2);
    mol->force[1][d] = mol->force[1][d] + 0.1 * stretch1;
    mol->force[2][d] = mol->force[2][d] + 0.1 * stretch2;
  }
}

double pairDistance2(struct Molecule *a, struct Molecule *b) {
  int d;
  double dr;
  double r2;
  r2 = 0.0;
  for (d = 0; d < 3; d++) {
    dr = a->pos[0][d] - b->pos[0][d];
    if (dr > boxSize / 2.0)
      dr = dr - boxSize;
    if (dr < -boxSize / 2.0)
      dr = dr + boxSize;
    r2 = r2 + dr * dr;
  }
  return r2;
}

void interForce(struct Molecule *a, struct Molecule *b) {
  int d;
  double dr;
  double r2;
  double f;
  r2 = pairDistance2(a, b);
  if (r2 < 0.0001 || r2 > 25.0)
    return;
  f = 1.0 / (r2 * r2);
  potential = potential + 1.0 / r2;
  for (d = 0; d < 3; d++) {
    dr = a->pos[0][d] - b->pos[0][d];
    a->force[0][d] = a->force[0][d] + f * dr;
    b->force[0][d] = b->force[0][d] - f * dr;
  }
}

/* Corrector folds forces back into accelerations and velocities. */
void correct(struct Molecule *mol, double dt) {
  int a;
  int d;
  double newAcc;
  for (a = 0; a < 3; a++)
    for (d = 0; d < 3; d++) {
      newAcc = mol->force[a][d];
      mol->vel[a][d] =
          mol->vel[a][d] + dt * (newAcc - mol->acc[a][d]) / 2.0;
      mol->acc[a][d] = newAcc;
    }
}

/* Periodic boundary conditions. */
void bound(struct Molecule *mol) {
  int a;
  int d;
  for (a = 0; a < 3; a++)
    for (d = 0; d < 3; d++) {
      if (mol->pos[a][d] > boxSize)
        mol->pos[a][d] = mol->pos[a][d] - boxSize;
      if (mol->pos[a][d] < 0.0)
        mol->pos[a][d] = mol->pos[a][d] + boxSize;
    }
}

double kinetic(struct Molecule *mols, int n) {
  int i;
  int a;
  int d;
  double e;
  e = 0.0;
  for (i = 0; i < n; i++)
    for (a = 0; a < 3; a++)
      for (d = 0; d < 3; d++)
        e = e + mols[i].vel[a][d] * mols[i].vel[a][d];
  return e / 2.0;
}

void initcnst(void) {
  int i;
  int a;
  int d;
  for (i = 0; i < NMOL; i++)
    for (a = 0; a < 3; a++)
      for (d = 0; d < 3; d++) {
        water[i].pos[a][d] = (i + a * 0.3 + d * 0.1);
        water[i].vel[a][d] = 0.01 * (i - a);
        water[i].acc[a][d] = 0.0;
      }
}

int main(void) {
  int step;
  int i;
  int j;
  double dt;
  dt = 0.01;
  initcnst();
  for (step = 0; step < 8; step++) {
    potential = 0.0;
    for (i = 0; i < NMOL; i++)
      predict(&water[i], dt);
    for (i = 0; i < NMOL; i++)
      zeroForces(&water[i]);
    for (i = 0; i < NMOL; i++)
      intraForce(&water[i]);
    for (i = 0; i < NMOL; i++)
      for (j = i + 1; j < NMOL; j++)
        interForce(&water[i], &water[j]);
    for (i = 0; i < NMOL; i++)
      correct(&water[i], dt);
    for (i = 0; i < NMOL; i++)
      bound(&water[i]);
  }
  kineticE = kinetic(water, NMOL);
  printf("ke %f pe %f\n", kineticE, potential);
  return 0;
}
)C";

//===----------------------------------------------------------------------===//
// incrstress — generated stress program for the incremental engine
//===----------------------------------------------------------------------===//

/// A depth-5 binary tree of pointer-shuffling helpers where every internal
/// function invokes each child twice, so the invocation-graph context count
/// (~2700 nodes) dwarfs the function count (63). Recursion-free, loop-free
/// and function-pointer-free: every baseline context is a graftable memo
/// donor, which is what bench_incr needs from "the largest corpus program".
///
/// The concrete heap invariant (every reachable node has `next` and `prev`
/// pointing at fully initialized nodes) holds inductively from main's
/// two-node cycle, so the interpreter never dereferences nil.
static std::string buildIncrStress() {
  const int Depth = 5;
  // Shuffle rounds per body. Body evaluation is a from-scratch-only
  // cost (grafted contexts skip it entirely), so this dial directly
  // sets the cold/incremental ratio bench_incr measures.
  const int Rounds = 60;
  auto fname = [](int D, int I) {
    return "walk" + std::to_string(D) + "_" + std::to_string(I);
  };
  std::string S;
  S += "/* Generated call-tree stress program (see buildIncrStress). */\n"
       "struct node {\n"
       "  struct node *next;\n"
       "  struct node *prev;\n"
       "  int val;\n"
       "};\n\n";
  // One shared slot per depth (not per function): points-to sets stay
  // small, so per-context state stays cheap to capture and resolve
  // while body replay stays expensive.
  for (int D = 0; D <= Depth; ++D)
    S += "struct node slot" + std::to_string(D) + ";\n";
  S += "struct node hub0;\nstruct node hub1;\n\n";
  for (int D = 0; D <= Depth; ++D)
    for (int I = 0; I < (1 << D); ++I)
      S += "void " + fname(D, I) + "(struct node *a, struct node *b);\n";
  S += "\n";
  // Shallowest-first: salt-0 mutations (file order) land in walk0_0,
  // whose re-evaluation is cheap — its two subtrees graft wholesale.
  for (int D = 0; D <= Depth; ++D) {
    for (int I = 0; I < (1 << D); ++I) {
      const std::string G = "slot" + std::to_string(D);
      S += "void " + fname(D, I) + "(struct node *a, struct node *b) {\n"
           "  struct node *t;\n"
           "  struct node *u;\n";
      for (int R = 0; R < Rounds; ++R) {
        S += "  t = a->next;\n"
             "  u = b->prev;\n"
             "  t->prev = u;\n"
             "  u->next = t;\n"
             "  a->next = t;\n"
             "  b->prev = u;\n"
             "  t->val = " + std::to_string((D * 100 + I) * 16 + R) + ";\n";
      }
      S += "  " + G + ".next = a->next;\n" +
           "  " + G + ".prev = b->prev;\n" +
           "  a->next = &" + G + ";\n" +
           "  b->prev = &" + G + ";\n" +
           "  " + G + ".val = " + std::to_string(D * 100 + I) + ";\n";
      if (D < Depth) {
        const std::string C0 = fname(D + 1, 2 * I);
        const std::string C1 = fname(D + 1, 2 * I + 1);
        S += "  t = " + G + ".next;\n" +
             "  u = " + G + ".prev;\n" +
             "  " + C0 + "(t, &" + G + ");\n" +
             "  " + C0 + "(&" + G + ", u);\n" +
             "  " + C1 + "(u, t);\n" +
             "  " + C1 + "(b, a);\n";
      }
      S += "}\n\n";
    }
  }
  S += "int main(void) {\n"
       "  struct node *p;\n"
       "  struct node *q;\n"
       "  p = &hub0;\n"
       "  q = &hub1;\n"
       "  hub0.next = q;\n"
       "  hub0.prev = q;\n"
       "  hub1.next = p;\n"
       "  hub1.prev = p;\n"
       "  " + fname(0, 0) + "(p, q);\n"
       "  " + fname(0, 0) + "(q, p);\n"
       "  return 0;\n"
       "}\n";
  return S;
}

static const char *incrStressSrc() {
  static const std::string Src = buildIncrStress();
  return Src.c_str();
}

const std::vector<CorpusProgram> &mcpta::corpus::corpus() {
  static const std::vector<CorpusProgram> Programs = {
      {"genetic", "Implementation of a genetic algorithm for sorting.",
       GeneticSrc},
      {"dry", "Dhrystone benchmark.", DrySrc},
      {"clinpack", "The C version of Linpack.", ClinpackSrc},
      {"config", "Checks all the features of the C-language.", ConfigSrc},
      {"toplev", "The top level of GNU C compiler.", ToplevSrc},
      {"compress", "UNIX utility program.", CompressSrc},
      {"mway", "A unified version of the best algorithms for m-way "
               "partitioning.",
       MwaySrc},
      {"hash", "An implementation of a hash table.", HashSrc},
      {"misr", "Creates two MISR's and compares their values.", MisrSrc},
      {"xref", "A cross-reference program to build a tree of items.",
       XrefSrc},
      {"stanford", "Stanford baby benchmark.", StanfordSrc},
      {"fixoutput", "A simple translator.", FixoutputSrc},
      {"sim", "Finds local similarities with affine weights.", SimSrc},
      {"travel", "Implements Traveling Salesman Problem with greedy "
                 "heuristics.",
       TravelSrc},
      {"csuite", "Part of test suite for Vectorizing C compilers.",
       CsuiteSrc},
      {"msc", "Calculates the min spanning circle of a set of n points in "
              "the plane.",
       MscSrc},
      {"lws", "Implements dynamic simulation of flexible water molecule.",
       LwsSrc},
      {"incrstress",
       "Generated incremental-analysis stress: deep direct-call fan-out "
       "where contexts dwarf functions.",
       incrStressSrc()},
  };
  return Programs;
}

const CorpusProgram *mcpta::corpus::find(const std::string &Name) {
  for (const CorpusProgram &P : corpus())
    if (Name == P.Name)
      return &P;
  return nullptr;
}
