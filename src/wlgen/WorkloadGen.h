//===- WorkloadGen.h - Synthetic C program generator ------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic (seeded) generator of synthetic C programs in the
/// accepted subset, used by the scaling benchmarks and by the
/// interpreter-based soundness property tests. Generated programs
/// always terminate: loops iterate constant trip counts and recursive
/// calls carry an explicit depth bound.
///
/// Also provides livcSource(), a generator for the paper's 'livc'
/// function-pointer study: N functions total, three global arrays of
/// function pointers initialized with K functions each, three indirect
/// call sites in loops (Sec. 6's description of livc).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_WLGEN_WORKLOADGEN_H
#define MCPTA_WLGEN_WORKLOADGEN_H

#include <cstdint>
#include <string>

namespace mcpta {
namespace wlgen {

/// Parameters of the random program generator.
struct GenConfig {
  uint64_t Seed = 1;
  unsigned NumFunctions = 6;   ///< besides main
  unsigned NumGlobals = 4;     ///< scalar/pointer globals
  unsigned StmtsPerFunction = 10;
  unsigned CallFanout = 2;     ///< calls emitted per function body
  unsigned RecursionDepth = 3; ///< depth bound passed at call sites
  bool UseFunctionPointers = false;
  bool UseRecursion = true;
  bool UseHeap = true;
  bool UseLoops = true;
};

/// Produces a complete, valid, terminating C program.
std::string generateProgram(const GenConfig &Cfg);

/// Produces a livc-like program: \p TotalFns functions, \p NumArrays
/// global arrays of \p PerArray function pointers each (these functions
/// are the address-taken ones), and one indirect call loop per array.
/// Functions not placed in any array are called directly.
std::string livcSource(unsigned TotalFns = 82, unsigned NumArrays = 3,
                       unsigned PerArray = 24);

/// Produces a terminating but analysis-hostile program for the
/// resource-governance tests (docs/ROBUSTNESS.md): a direct-call chain
/// of \p Depth levels with \p Fanout distinct call sites per level
/// (Fanout^Depth invocation-graph contexts), whose deepest level
/// dispatches through a table of \p NumHandlers function pointers into
/// handlers that drive bounded mutual recursion of depth \p RecDepth.
/// Every function shuffles pointers among globals, parameters, and
/// locals so degraded runs still have points-to facts to check.
std::string pathologicalSource(unsigned Depth = 8, unsigned Fanout = 3,
                               unsigned NumHandlers = 6,
                               unsigned RecDepth = 16);

/// Kinds of small source edits, modeling a developer's single-function
/// change between two analysis runs (the incremental-engine tests and
/// bench_incr drive IncrementalEngine with these).
enum class MutationKind {
  RenameLocal,      ///< rename one local variable throughout its function
  TweakConstant,    ///< increment one integer literal in a function body
  AddAssignment,    ///< append a copy between two same-typed locals
  RemoveAssignment, ///< delete one simple (call-free) assignment statement
  AddCall,          ///< add an empty function and a call to it
};

/// All kinds, for sweeping tests.
inline constexpr MutationKind AllMutationKinds[] = {
    MutationKind::RenameLocal,      MutationKind::TweakConstant,
    MutationKind::AddAssignment,    MutationKind::RemoveAssignment,
    MutationKind::AddCall,
};

const char *mutationKindName(MutationKind K);

/// Applies one deterministic edit of kind \p Kind to \p Seed, a C
/// program in the accepted subset. Candidate edit sites are collected
/// in file order by a small token scan and \p Salt selects one
/// (Salt % candidates), so distinct salts walk distinct sites. Returns
/// \p Seed unchanged when the kind has no applicable site (e.g.
/// RemoveAssignment on a program with no simple assignments) — callers
/// can detect this by string comparison.
std::string mutateSource(const std::string &Seed, MutationKind Kind,
                         uint64_t Salt = 0);

} // namespace wlgen
} // namespace mcpta

#endif // MCPTA_WLGEN_WORKLOADGEN_H
