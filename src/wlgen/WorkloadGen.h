//===- WorkloadGen.h - Synthetic C program generator ------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic (seeded) generator of synthetic C programs in the
/// accepted subset, used by the scaling benchmarks and by the
/// interpreter-based soundness property tests. Generated programs
/// always terminate: loops iterate constant trip counts and recursive
/// calls carry an explicit depth bound.
///
/// Also provides livcSource(), a generator for the paper's 'livc'
/// function-pointer study: N functions total, three global arrays of
/// function pointers initialized with K functions each, three indirect
/// call sites in loops (Sec. 6's description of livc).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_WLGEN_WORKLOADGEN_H
#define MCPTA_WLGEN_WORKLOADGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace mcpta {
namespace wlgen {

/// Parameters of the random program generator.
struct GenConfig {
  uint64_t Seed = 1;
  unsigned NumFunctions = 6;   ///< besides main
  unsigned NumGlobals = 4;     ///< scalar/pointer globals
  unsigned StmtsPerFunction = 10;
  unsigned CallFanout = 2;     ///< calls emitted per function body
  unsigned RecursionDepth = 3; ///< depth bound passed at call sites
  bool UseFunctionPointers = false;
  bool UseRecursion = true;
  bool UseHeap = true;
  bool UseLoops = true;
};

/// Produces a complete, valid, terminating C program.
std::string generateProgram(const GenConfig &Cfg);

/// One query of a generated query workload, in the serve vocabulary:
/// points_to names a location, alias holds two star-prefixed access
/// path expressions.
struct QuerySpec {
  enum class Kind { PointsTo, Alias };
  Kind K = Kind::PointsTo;
  std::string Name; ///< PointsTo
  std::string A, B; ///< Alias
  /// True when the query targets main's frame (the demand engine's
  /// fast path); false for globals, whose conservative mod sets keep
  /// most of the slice live.
  bool Hot = false;
};

/// A (program, query set) pair for the demand-query bench and the
/// demand-vs-exhaustive equivalence suite.
struct QueryWorkload {
  std::string Source;
  std::vector<QuerySpec> Queries;
};

/// Parameters of queryWorkload. The program is generateProgram-flavored
/// (same statement mix, same helper-function shape) except that main's
/// locals carry unique `m`-prefixed names: generated helper functions
/// deliberately share local names (x0, p0, ...), and a demand query on
/// an ambiguous name always falls back, which would make every "hot"
/// query exercise nothing.
struct QueryWorkloadConfig {
  uint64_t Seed = 1;
  unsigned NumFunctions = 4;     ///< helper functions besides main
  unsigned NumGlobals = 4;       ///< int g%d / int *gp%d pairs
  unsigned StmtsPerFunction = 10;
  unsigned MainStmts = 14;       ///< statements in main (plus inits)
  unsigned NumQueries = 32;
  /// Percent of queries drawn from the hot pool (main's pointer
  /// locals) versus the cold pool (pointer globals).
  unsigned HotPercent = 80;
  /// Passed through to the helper functions; both make every query
  /// fall back (recorded "fnptr" / "recursion" reasons), which is what
  /// the fallback side of the equivalence suite wants.
  bool UseFunctionPointers = false;
  bool UseRecursion = false;
};

/// Produces a deterministic (program, queries) pair with the requested
/// hot/cold skew. Hot queries name main's pointer locals (mp%d, mq%d);
/// cold queries name pointer globals (gp%d).
QueryWorkload queryWorkload(const QueryWorkloadConfig &Cfg);

/// Produces a livc-like program: \p TotalFns functions, \p NumArrays
/// global arrays of \p PerArray function pointers each (these functions
/// are the address-taken ones), and one indirect call loop per array.
/// Functions not placed in any array are called directly.
std::string livcSource(unsigned TotalFns = 82, unsigned NumArrays = 3,
                       unsigned PerArray = 24);

/// Produces a terminating but analysis-hostile program for the
/// resource-governance tests (docs/ROBUSTNESS.md): a direct-call chain
/// of \p Depth levels with \p Fanout distinct call sites per level
/// (Fanout^Depth invocation-graph contexts), whose deepest level
/// dispatches through a table of \p NumHandlers function pointers into
/// handlers that drive bounded mutual recursion of depth \p RecDepth.
/// Every function shuffles pointers among globals, parameters, and
/// locals so degraded runs still have points-to facts to check.
std::string pathologicalSource(unsigned Depth = 8, unsigned Fanout = 3,
                               unsigned NumHandlers = 6,
                               unsigned RecDepth = 16);

/// Kinds of small source edits, modeling a developer's single-function
/// change between two analysis runs (the incremental-engine tests and
/// bench_incr drive IncrementalEngine with these).
enum class MutationKind {
  RenameLocal,      ///< rename one local variable throughout its function
  TweakConstant,    ///< increment one integer literal in a function body
  AddAssignment,    ///< append a copy between two same-typed locals
  RemoveAssignment, ///< delete one simple (call-free) assignment statement
  AddCall,          ///< add an empty function and a call to it
};

/// All kinds, for sweeping tests.
inline constexpr MutationKind AllMutationKinds[] = {
    MutationKind::RenameLocal,      MutationKind::TweakConstant,
    MutationKind::AddAssignment,    MutationKind::RemoveAssignment,
    MutationKind::AddCall,
};

const char *mutationKindName(MutationKind K);

/// Applies one deterministic edit of kind \p Kind to \p Seed, a C
/// program in the accepted subset. Candidate edit sites are collected
/// in file order by a small token scan and \p Salt selects one
/// (Salt % candidates), so distinct salts walk distinct sites. Returns
/// \p Seed unchanged when the kind has no applicable site (e.g.
/// RemoveAssignment on a program with no simple assignments) — callers
/// can detect this by string comparison.
std::string mutateSource(const std::string &Seed, MutationKind Kind,
                         uint64_t Salt = 0);

} // namespace wlgen
} // namespace mcpta

#endif // MCPTA_WLGEN_WORKLOADGEN_H
