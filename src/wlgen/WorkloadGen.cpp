//===- WorkloadGen.cpp - Synthetic C program generator -------------------------===//

#include "wlgen/WorkloadGen.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace mcpta;
using namespace mcpta::wlgen;

namespace {

/// Deterministic 64-bit LCG (same constants as MMIX).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed * 2862933555777941757ULL + 1) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 17;
  }
  unsigned below(unsigned N) { return N ? next() % N : 0; }
  bool chance(unsigned Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

/// Emits one generated function body.
class BodyGen {
public:
  BodyGen(Rng &R, const GenConfig &Cfg, unsigned NumScalars,
          unsigned NumPtrs, unsigned NumPtrPtrs, bool HasParams)
      : R(R), Cfg(Cfg), NumScalars(NumScalars), NumPtrs(NumPtrs),
        NumPtrPtrs(NumPtrPtrs), HasParams(HasParams) {}

  std::string scalar() { return "x" + std::to_string(R.below(NumScalars)); }
  std::string ptr() {
    // Params (a: int*, b: int**) join the candidate pools.
    if (HasParams && R.chance(30))
      return "a";
    return "p" + std::to_string(R.below(NumPtrs));
  }
  std::string ptrptr() {
    if (HasParams && R.chance(30))
      return "b";
    return "q" + std::to_string(R.below(NumPtrPtrs));
  }
  std::string globalScalar() {
    return "g" + std::to_string(R.below(Cfg.NumGlobals));
  }
  std::string globalPtr() {
    return "gp" + std::to_string(R.below(Cfg.NumGlobals));
  }

  /// One random pointer-flavored statement.
  std::string stmt(const std::string &Pad) {
    switch (R.below(12)) {
    case 0:
      return Pad + scalar() + " = " + std::to_string(R.below(100)) + ";\n";
    case 1:
      return Pad + scalar() + " = " + scalar() + " + " + scalar() + ";\n";
    case 2:
      return Pad + ptr() + " = &" + scalar() + ";\n";
    case 3:
      return Pad + ptr() + " = &" + globalScalar() + ";\n";
    case 4:
      return Pad + ptr() + " = " + ptr() + ";\n";
    case 5:
      return Pad + globalPtr() + " = " + ptr() + ";\n";
    case 6:
      return Pad + ptrptr() + " = &" + ptr() + ";\n";
    case 7:
      return Pad + "if (" + ptr() + " != NULL) " + scalar() + " = *" +
             ptr() + ";\n";
    case 8:
      return Pad + "if (" + ptr() + " != NULL) *" + ptr() + " = " +
             scalar() + ";\n";
    case 9:
      return Pad + "if (" + ptrptr() + " != NULL) " + ptr() + " = *" +
             ptrptr() + ";\n";
    case 10:
      if (Cfg.UseHeap)
        return Pad + ptr() + " = (int *)malloc(4);\n";
      return Pad + ptr() + " = &" + globalScalar() + ";\n";
    default:
      return Pad + ptr() + " = " + globalPtr() + ";\n";
    }
  }

private:
  Rng &R;
  const GenConfig &Cfg;
  unsigned NumScalars;
  unsigned NumPtrs;
  unsigned NumPtrPtrs;
  bool HasParams;
};

} // namespace

std::string mcpta::wlgen::generateProgram(const GenConfig &Cfg) {
  Rng R(Cfg.Seed);
  std::string Out;
  Out += "int printf(char *fmt, ...);\n";
  Out += "void *malloc(int n);\n\n";

  // Globals.
  for (unsigned I = 0; I < Cfg.NumGlobals; ++I) {
    Out += "int g" + std::to_string(I) + ";\n";
    Out += "int *gp" + std::to_string(I) + ";\n";
  }
  Out += "\n";

  // All functions share the signature int f(int *a, int **b, int d):
  // a pointer, a pointer-to-pointer, and the recursion depth bound.
  unsigned N = Cfg.NumFunctions;
  for (unsigned I = 0; I < N; ++I)
    Out += "int f" + std::to_string(I) + "(int *a, int **b, int d);\n";
  Out += "\n";

  // Like real programs (the paper's livc), only a subset of functions
  // lands in the dispatch table; full-table-of-everything density makes
  // the invocation graph blow up exponentially (the paper's worst case).
  unsigned TableSize = std::min(N, 4u);
  if (Cfg.UseFunctionPointers) {
    Out += "int (*ftab[" + std::to_string(TableSize) +
           "])(int *, int **, int) = {";
    for (unsigned I = 0; I < TableSize; ++I) {
      if (I)
        Out += ", ";
      Out += "f" + std::to_string(I);
    }
    Out += "};\n\n";
  }

  const unsigned Scalars = 3, Ptrs = 3, PtrPtrs = 2;

  auto EmitLocals = [&](std::string &Body) {
    for (unsigned I = 0; I < Scalars; ++I)
      Body += "  int x" + std::to_string(I) + ";\n";
    for (unsigned I = 0; I < Ptrs; ++I)
      Body += "  int *p" + std::to_string(I) + ";\n";
    for (unsigned I = 0; I < PtrPtrs; ++I)
      Body += "  int **q" + std::to_string(I) + ";\n";
    Body += "  int li;\n";
    for (unsigned I = 0; I < Scalars; ++I)
      Body += "  x" + std::to_string(I) + " = " +
              std::to_string(R.below(10)) + ";\n";
    for (unsigned I = 0; I < Ptrs; ++I)
      Body += "  p" + std::to_string(I) + " = &x" +
              std::to_string(R.below(Scalars)) + ";\n";
    for (unsigned I = 0; I < PtrPtrs; ++I)
      Body += "  q" + std::to_string(I) + " = &p" +
              std::to_string(R.below(Ptrs)) + ";\n";
  };

  auto EmitCall = [&](std::string &Body, const std::string &Pad,
                      unsigned SelfIdx, bool AllowSelf) {
    unsigned Callee = R.below(N);
    if (!Cfg.UseRecursion && !AllowSelf)
      while (Callee == SelfIdx)
        Callee = (Callee + 1) % N;
    std::string Depth = SelfIdx == ~0u ? std::to_string(Cfg.RecursionDepth)
                                       : "d - 1";
    std::string Ptr = "p" + std::to_string(R.below(Ptrs));
    std::string PtrPtr = "q" + std::to_string(R.below(PtrPtrs));
    if (Cfg.UseFunctionPointers && R.chance(25)) {
      Body += Pad + "fp = ftab[" + std::to_string(R.below(TableSize)) +
              "];\n";
      Body += Pad + "x0 = fp(" + Ptr + ", " + PtrPtr + ", " + Depth + ");\n";
    } else {
      Body += Pad + "x0 = f" + std::to_string(Callee) + "(" + Ptr + ", " +
              PtrPtr + ", " + Depth + ");\n";
    }
  };

  for (unsigned I = 0; I < N; ++I) {
    std::string Body;
    Body += "int f" + std::to_string(I) + "(int *a, int **b, int d) {\n";
    if (Cfg.UseFunctionPointers)
      Body += "  int (*fp)(int *, int **, int);\n";
    EmitLocals(Body);
    Body += "  if (d <= 0)\n    return 0;\n";

    BodyGen BG(R, Cfg, Scalars, Ptrs, PtrPtrs, /*HasParams=*/true);
    unsigned CallsLeft = Cfg.CallFanout;
    for (unsigned S = 0; S < Cfg.StmtsPerFunction; ++S) {
      if (Cfg.UseLoops && R.chance(15)) {
        Body += "  for (li = 0; li < " + std::to_string(2 + R.below(4)) +
                "; li++) {\n";
        Body += BG.stmt("    ");
        Body += BG.stmt("    ");
        Body += "  }\n";
        continue;
      }
      if (CallsLeft && R.chance(30)) {
        EmitCall(Body, "  ", I, /*AllowSelf=*/Cfg.UseRecursion);
        --CallsLeft;
        continue;
      }
      Body += BG.stmt("  ");
    }
    Body += "  if (a != NULL && b != NULL && *b != NULL)\n";
    Body += "    **b = *a + x0;\n";
    Body += "  return x0 + x1;\n";
    Body += "}\n\n";
    Out += Body;
  }

  // main seeds the call tree.
  Out += "int main(void) {\n";
  if (Cfg.UseFunctionPointers)
    Out += "  int (*fp)(int *, int **, int);\n";
  std::string MainBody;
  EmitLocals(MainBody);
  Out += MainBody;
  BodyGen BG(R, Cfg, Scalars, Ptrs, PtrPtrs, /*HasParams=*/false);
  for (unsigned S = 0; S < Cfg.StmtsPerFunction; ++S) {
    if (R.chance(35)) {
      EmitCall(Out, "  ", ~0u, true);
      continue;
    }
    Out += BG.stmt("  ");
  }
  Out += "  printf(\"%d\\n\", x0 + x1 + x2);\n";
  Out += "  return 0;\n";
  Out += "}\n";
  return Out;
}

std::string mcpta::wlgen::livcSource(unsigned TotalFns, unsigned NumArrays,
                                     unsigned PerArray) {
  assert(NumArrays * PerArray <= TotalFns &&
         "arrays cannot hold more functions than exist");
  std::string Out;
  Out += "int printf(char *fmt, ...);\n\n";
  Out += "double data[64];\n";
  Out += "double out[64];\n\n";

  // Kernels: each reads/writes through its pointer arguments.
  for (unsigned I = 0; I < TotalFns; ++I) {
    std::string N = std::to_string(I);
    Out += "int kernel" + N + "(double *x, double *y, int n) {\n";
    Out += "  int i;\n";
    Out += "  for (i = 0; i < n; i++)\n";
    Out += "    y[i] = y[i] + x[i] * " + std::to_string(I % 7 + 1) +
           ".0;\n";
    Out += "  return n;\n";
    Out += "}\n";
  }
  Out += "\n";

  // NumArrays global arrays of function pointers over the first
  // NumArrays*PerArray kernels — these are the address-taken functions.
  for (unsigned A = 0; A < NumArrays; ++A) {
    Out += "int (*loops" + std::to_string(A) + "[" +
           std::to_string(PerArray) + "])(double *, double *, int) = {";
    for (unsigned I = 0; I < PerArray; ++I) {
      if (I)
        Out += ", ";
      Out += "kernel" + std::to_string(A * PerArray + I);
    }
    Out += "};\n";
  }
  Out += "\n";

  Out += "int main(void) {\n";
  Out += "  int i;\n";
  Out += "  int total;\n";
  Out += "  int (*f)(double *, double *, int);\n";
  Out += "  total = 0;\n";
  // One indirect call site per array, each inside a loop, each through
  // a scalar local function pointer (the paper's exact description).
  for (unsigned A = 0; A < NumArrays; ++A) {
    std::string N = std::to_string(A);
    Out += "  for (i = 0; i < " + std::to_string(PerArray) + "; i++) {\n";
    Out += "    f = loops" + N + "[i];\n";
    Out += "    total = total + f(data, out, 64);\n";
    Out += "  }\n";
  }
  // The remaining kernels are called directly (addresses never taken).
  for (unsigned I = NumArrays * PerArray; I < TotalFns; ++I)
    Out += "  total = total + kernel" + std::to_string(I) +
           "(data, out, 64);\n";
  Out += "  printf(\"%d\\n\", total);\n";
  Out += "  return 0;\n";
  Out += "}\n";
  return Out;
}

std::string mcpta::wlgen::pathologicalSource(unsigned Depth, unsigned Fanout,
                                             unsigned NumHandlers,
                                             unsigned RecDepth) {
  std::string Out;
  Out += "int printf(char *fmt, ...);\n\n";
  Out += "int ga; int gb; int gc;\n";
  Out += "int *gp; int *gq; int **gpp;\n\n";

  // Bounded mutual recursion churns the Figure 4 generalization passes.
  Out += "int recB(int *p, int **q, int d);\n";
  Out += "int recA(int *p, int **q, int d) {\n";
  Out += "  int la;\n";
  Out += "  if (d > 0) {\n";
  Out += "    gp = p;\n";
  Out += "    *q = &la;\n";
  Out += "    recB(&ga, &gp, d - 1);\n";
  Out += "    recB(p, q, d - 1);\n";
  Out += "  }\n";
  Out += "  return d;\n";
  Out += "}\n";
  Out += "int recB(int *p, int **q, int d) {\n";
  Out += "  if (d > 0) {\n";
  Out += "    gq = *q;\n";
  Out += "    recA(&gb, &gq, d - 1);\n";
  Out += "  }\n";
  Out += "  return d;\n";
  Out += "}\n\n";

  // Handlers reached only through the function-pointer table.
  for (unsigned H = 0; H < NumHandlers; ++H) {
    std::string N = std::to_string(H);
    Out += "int h" + N + "(int *p, int **q, int d) {\n";
    Out += "  gp = p;\n";
    Out += "  *q = &g";
    Out += "abc"[H % 3];
    Out += ";\n";
    Out += "  recA(p, q, d);\n";
    Out += "  return d + " + N + ";\n";
    Out += "}\n";
  }
  Out += "\nint (*ftab[" + std::to_string(NumHandlers) +
         "])(int *, int **, int) = {";
  for (unsigned H = 0; H < NumHandlers; ++H) {
    if (H)
      Out += ", ";
    Out += "h" + std::to_string(H);
  }
  Out += "};\n\n";

  // The deepest level fans out through the table (Sec. 5 growth)...
  Out += "int level" + std::to_string(Depth) + "(int *p, int **q, int d) {\n";
  Out += "  int i;\n";
  Out += "  int t;\n";
  Out += "  int (*f)(int *, int **, int);\n";
  Out += "  t = 0;\n";
  Out += "  for (i = 0; i < " + std::to_string(NumHandlers) + "; i++) {\n";
  Out += "    f = ftab[i];\n";
  Out += "    t = t + f(p, q, d);\n";
  Out += "  }\n";
  Out += "  return t;\n";
  Out += "}\n";

  // ...and every level above it calls the next level from Fanout
  // distinct call sites: Fanout^Depth invocation-graph contexts.
  for (unsigned L = Depth; L > 0; --L) {
    std::string Cur = std::to_string(L - 1);
    std::string Next = std::to_string(L);
    Out += "int level" + Cur + "(int *p, int **q, int d) {\n";
    Out += "  int lx;\n";
    Out += "  int *lp;\n";
    Out += "  int t;\n";
    Out += "  lp = &lx;\n";
    Out += "  t = 0;\n";
    for (unsigned F = 0; F < Fanout; ++F) {
      switch (F % 3) {
      case 0:
        Out += "  t = t + level" + Next + "(p, q, d);\n";
        break;
      case 1:
        Out += "  gp = lp;\n";
        Out += "  t = t + level" + Next + "(lp, &gp, d);\n";
        break;
      case 2:
        Out += "  *q = &ga;\n";
        Out += "  t = t + level" + Next + "(&gb, q, d);\n";
        break;
      }
    }
    Out += "  return t;\n";
    Out += "}\n";
  }

  Out += "\nint main(void) {\n";
  Out += "  int r;\n";
  Out += "  gp = &ga;\n";
  Out += "  gq = &gb;\n";
  Out += "  gpp = &gp;\n";
  Out += "  r = level0(&gc, gpp, " + std::to_string(RecDepth) + ");\n";
  Out += "  printf(\"%d\\n\", r);\n";
  Out += "  return 0;\n";
  Out += "}\n";
  return Out;
}
