//===- WorkloadGen.cpp - Synthetic C program generator -------------------------===//

#include "wlgen/WorkloadGen.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace mcpta;
using namespace mcpta::wlgen;

namespace {

/// Deterministic 64-bit LCG (same constants as MMIX).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed * 2862933555777941757ULL + 1) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 17;
  }
  unsigned below(unsigned N) { return N ? next() % N : 0; }
  bool chance(unsigned Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

/// Emits one generated function body.
class BodyGen {
public:
  BodyGen(Rng &R, const GenConfig &Cfg, unsigned NumScalars,
          unsigned NumPtrs, unsigned NumPtrPtrs, bool HasParams)
      : R(R), Cfg(Cfg), NumScalars(NumScalars), NumPtrs(NumPtrs),
        NumPtrPtrs(NumPtrPtrs), HasParams(HasParams) {}

  std::string scalar() { return "x" + std::to_string(R.below(NumScalars)); }
  std::string ptr() {
    // Params (a: int*, b: int**) join the candidate pools.
    if (HasParams && R.chance(30))
      return "a";
    return "p" + std::to_string(R.below(NumPtrs));
  }
  std::string ptrptr() {
    if (HasParams && R.chance(30))
      return "b";
    return "q" + std::to_string(R.below(NumPtrPtrs));
  }
  std::string globalScalar() {
    return "g" + std::to_string(R.below(Cfg.NumGlobals));
  }
  std::string globalPtr() {
    return "gp" + std::to_string(R.below(Cfg.NumGlobals));
  }

  /// One random pointer-flavored statement.
  std::string stmt(const std::string &Pad) {
    switch (R.below(12)) {
    case 0:
      return Pad + scalar() + " = " + std::to_string(R.below(100)) + ";\n";
    case 1:
      return Pad + scalar() + " = " + scalar() + " + " + scalar() + ";\n";
    case 2:
      return Pad + ptr() + " = &" + scalar() + ";\n";
    case 3:
      return Pad + ptr() + " = &" + globalScalar() + ";\n";
    case 4:
      return Pad + ptr() + " = " + ptr() + ";\n";
    case 5:
      return Pad + globalPtr() + " = " + ptr() + ";\n";
    case 6:
      return Pad + ptrptr() + " = &" + ptr() + ";\n";
    case 7:
      return Pad + "if (" + ptr() + " != NULL) " + scalar() + " = *" +
             ptr() + ";\n";
    case 8:
      return Pad + "if (" + ptr() + " != NULL) *" + ptr() + " = " +
             scalar() + ";\n";
    case 9:
      return Pad + "if (" + ptrptr() + " != NULL) " + ptr() + " = *" +
             ptrptr() + ";\n";
    case 10:
      if (Cfg.UseHeap)
        return Pad + ptr() + " = (int *)malloc(4);\n";
      return Pad + ptr() + " = &" + globalScalar() + ";\n";
    default:
      return Pad + ptr() + " = " + globalPtr() + ";\n";
    }
  }

private:
  Rng &R;
  const GenConfig &Cfg;
  unsigned NumScalars;
  unsigned NumPtrs;
  unsigned NumPtrPtrs;
  bool HasParams;
};

} // namespace

std::string mcpta::wlgen::generateProgram(const GenConfig &Cfg) {
  Rng R(Cfg.Seed);
  std::string Out;
  Out += "int printf(char *fmt, ...);\n";
  Out += "void *malloc(int n);\n\n";

  // Globals.
  for (unsigned I = 0; I < Cfg.NumGlobals; ++I) {
    Out += "int g" + std::to_string(I) + ";\n";
    Out += "int *gp" + std::to_string(I) + ";\n";
  }
  Out += "\n";

  // All functions share the signature int f(int *a, int **b, int d):
  // a pointer, a pointer-to-pointer, and the recursion depth bound.
  unsigned N = Cfg.NumFunctions;
  for (unsigned I = 0; I < N; ++I)
    Out += "int f" + std::to_string(I) + "(int *a, int **b, int d);\n";
  Out += "\n";

  // Like real programs (the paper's livc), only a subset of functions
  // lands in the dispatch table; full-table-of-everything density makes
  // the invocation graph blow up exponentially (the paper's worst case).
  unsigned TableSize = std::min(N, 4u);
  if (Cfg.UseFunctionPointers) {
    Out += "int (*ftab[" + std::to_string(TableSize) +
           "])(int *, int **, int) = {";
    for (unsigned I = 0; I < TableSize; ++I) {
      if (I)
        Out += ", ";
      Out += "f" + std::to_string(I);
    }
    Out += "};\n\n";
  }

  const unsigned Scalars = 3, Ptrs = 3, PtrPtrs = 2;

  auto EmitLocals = [&](std::string &Body) {
    for (unsigned I = 0; I < Scalars; ++I)
      Body += "  int x" + std::to_string(I) + ";\n";
    for (unsigned I = 0; I < Ptrs; ++I)
      Body += "  int *p" + std::to_string(I) + ";\n";
    for (unsigned I = 0; I < PtrPtrs; ++I)
      Body += "  int **q" + std::to_string(I) + ";\n";
    Body += "  int li;\n";
    for (unsigned I = 0; I < Scalars; ++I)
      Body += "  x" + std::to_string(I) + " = " +
              std::to_string(R.below(10)) + ";\n";
    for (unsigned I = 0; I < Ptrs; ++I)
      Body += "  p" + std::to_string(I) + " = &x" +
              std::to_string(R.below(Scalars)) + ";\n";
    for (unsigned I = 0; I < PtrPtrs; ++I)
      Body += "  q" + std::to_string(I) + " = &p" +
              std::to_string(R.below(Ptrs)) + ";\n";
  };

  auto EmitCall = [&](std::string &Body, const std::string &Pad,
                      unsigned SelfIdx, bool AllowSelf) {
    unsigned Callee = R.below(N);
    if (!Cfg.UseRecursion && !AllowSelf)
      while (Callee == SelfIdx)
        Callee = (Callee + 1) % N;
    std::string Depth = SelfIdx == ~0u ? std::to_string(Cfg.RecursionDepth)
                                       : "d - 1";
    std::string Ptr = "p" + std::to_string(R.below(Ptrs));
    std::string PtrPtr = "q" + std::to_string(R.below(PtrPtrs));
    if (Cfg.UseFunctionPointers && R.chance(25)) {
      Body += Pad + "fp = ftab[" + std::to_string(R.below(TableSize)) +
              "];\n";
      Body += Pad + "x0 = fp(" + Ptr + ", " + PtrPtr + ", " + Depth + ");\n";
    } else {
      Body += Pad + "x0 = f" + std::to_string(Callee) + "(" + Ptr + ", " +
              PtrPtr + ", " + Depth + ");\n";
    }
  };

  for (unsigned I = 0; I < N; ++I) {
    std::string Body;
    Body += "int f" + std::to_string(I) + "(int *a, int **b, int d) {\n";
    if (Cfg.UseFunctionPointers)
      Body += "  int (*fp)(int *, int **, int);\n";
    EmitLocals(Body);
    Body += "  if (d <= 0)\n    return 0;\n";

    BodyGen BG(R, Cfg, Scalars, Ptrs, PtrPtrs, /*HasParams=*/true);
    unsigned CallsLeft = Cfg.CallFanout;
    for (unsigned S = 0; S < Cfg.StmtsPerFunction; ++S) {
      if (Cfg.UseLoops && R.chance(15)) {
        Body += "  for (li = 0; li < " + std::to_string(2 + R.below(4)) +
                "; li++) {\n";
        Body += BG.stmt("    ");
        Body += BG.stmt("    ");
        Body += "  }\n";
        continue;
      }
      if (CallsLeft && R.chance(30)) {
        EmitCall(Body, "  ", I, /*AllowSelf=*/Cfg.UseRecursion);
        --CallsLeft;
        continue;
      }
      Body += BG.stmt("  ");
    }
    Body += "  if (a != NULL && b != NULL && *b != NULL)\n";
    Body += "    **b = *a + x0;\n";
    Body += "  return x0 + x1;\n";
    Body += "}\n\n";
    Out += Body;
  }

  // main seeds the call tree.
  Out += "int main(void) {\n";
  if (Cfg.UseFunctionPointers)
    Out += "  int (*fp)(int *, int **, int);\n";
  std::string MainBody;
  EmitLocals(MainBody);
  Out += MainBody;
  BodyGen BG(R, Cfg, Scalars, Ptrs, PtrPtrs, /*HasParams=*/false);
  for (unsigned S = 0; S < Cfg.StmtsPerFunction; ++S) {
    if (R.chance(35)) {
      EmitCall(Out, "  ", ~0u, true);
      continue;
    }
    Out += BG.stmt("  ");
  }
  Out += "  printf(\"%d\\n\", x0 + x1 + x2);\n";
  Out += "  return 0;\n";
  Out += "}\n";
  return Out;
}

mcpta::wlgen::QueryWorkload
mcpta::wlgen::queryWorkload(const QueryWorkloadConfig &Cfg) {
  Rng R(Cfg.Seed * 0x9E3779B97F4A7C15ULL + 7);
  QueryWorkload W;
  std::string Out;
  Out += "int printf(char *fmt, ...);\n";
  Out += "void *malloc(int n);\n\n";

  for (unsigned I = 0; I < Cfg.NumGlobals; ++I) {
    Out += "int g" + std::to_string(I) + ";\n";
    Out += "int *gp" + std::to_string(I) + ";\n";
  }
  Out += "\n";

  unsigned N = Cfg.NumFunctions ? Cfg.NumFunctions : 1;
  for (unsigned I = 0; I < N; ++I)
    Out += "int f" + std::to_string(I) + "(int *a, int **b, int d);\n";
  Out += "\n";
  unsigned TableSize = std::min(N, 4u);
  if (Cfg.UseFunctionPointers) {
    Out += "int (*ftab[" + std::to_string(TableSize) +
           "])(int *, int **, int) = {";
    for (unsigned I = 0; I < TableSize; ++I) {
      if (I)
        Out += ", ";
      Out += "f" + std::to_string(I);
    }
    Out += "};\n\n";
  }

  // Helper functions: the generateProgram body mix (shared local
  // names are fine here — queries never target helper frames).
  GenConfig FnCfg;
  FnCfg.NumGlobals = Cfg.NumGlobals;
  FnCfg.UseHeap = true;
  const unsigned Scalars = 3, Ptrs = 3, PtrPtrs = 2;
  for (unsigned I = 0; I < N; ++I) {
    std::string Body;
    Body += "int f" + std::to_string(I) + "(int *a, int **b, int d) {\n";
    if (Cfg.UseFunctionPointers)
      Body += "  int (*fp)(int *, int **, int);\n";
    for (unsigned J = 0; J < Scalars; ++J)
      Body += "  int x" + std::to_string(J) + ";\n";
    for (unsigned J = 0; J < Ptrs; ++J)
      Body += "  int *p" + std::to_string(J) + ";\n";
    for (unsigned J = 0; J < PtrPtrs; ++J)
      Body += "  int **q" + std::to_string(J) + ";\n";
    for (unsigned J = 0; J < Scalars; ++J)
      Body += "  x" + std::to_string(J) + " = " + std::to_string(R.below(10)) +
              ";\n";
    for (unsigned J = 0; J < Ptrs; ++J)
      Body += "  p" + std::to_string(J) + " = &x" +
              std::to_string(R.below(Scalars)) + ";\n";
    for (unsigned J = 0; J < PtrPtrs; ++J)
      Body += "  q" + std::to_string(J) + " = &p" +
              std::to_string(R.below(Ptrs)) + ";\n";
    Body += "  if (d <= 0)\n    return 0;\n";
    // UseRecursion guarantees the demand engine's recursion gate with a
    // depth-bounded (terminating) self-call in every helper.
    if (Cfg.UseRecursion)
      Body += "  x0 = f" + std::to_string(I) + "(p0, q0, d - 1);\n";
    BodyGen BG(R, FnCfg, Scalars, Ptrs, PtrPtrs, /*HasParams=*/true);
    unsigned CallsLeft = 2;
    for (unsigned S = 0; S < Cfg.StmtsPerFunction; ++S) {
      if (CallsLeft && R.chance(30)) {
        if (Cfg.UseFunctionPointers && R.chance(40)) {
          Body += "  fp = ftab[" + std::to_string(R.below(TableSize)) +
                  "];\n";
          Body += "  x0 = fp(p0, q0, d - 1);\n";
          --CallsLeft;
          continue;
        }
        // Direct calls go strictly downward (f_I -> f_J, J > I): the
        // default workload's call graph is a DAG, so the demand engine
        // is not gated on recursion unless the config asks for it.
        if (I + 1 < N) {
          unsigned Callee = I + 1 + R.below(N - I - 1);
          Body += "  x0 = f" + std::to_string(Callee) + "(p" +
                  std::to_string(R.below(Ptrs)) + ", q" +
                  std::to_string(R.below(PtrPtrs)) + ", d - 1);\n";
          --CallsLeft;
          continue;
        }
      }
      Body += BG.stmt("  ");
    }
    Body += "  return x0 + x1;\n";
    Body += "}\n\n";
    Out += Body;
  }

  // main: uniquely named locals so demand name resolution succeeds.
  const unsigned MScalars = 3, MPtrs = 3, MPtrPtrs = 2;
  Out += "int main(void) {\n";
  for (unsigned J = 0; J < MScalars; ++J)
    Out += "  int mx" + std::to_string(J) + ";\n";
  for (unsigned J = 0; J < MPtrs; ++J)
    Out += "  int *mp" + std::to_string(J) + ";\n";
  for (unsigned J = 0; J < MPtrPtrs; ++J)
    Out += "  int **mq" + std::to_string(J) + ";\n";
  if (Cfg.UseFunctionPointers)
    Out += "  int (*mfp)(int *, int **, int);\n";
  for (unsigned J = 0; J < MScalars; ++J)
    Out += "  mx" + std::to_string(J) + " = " + std::to_string(R.below(10)) +
           ";\n";
  for (unsigned J = 0; J < MPtrs; ++J)
    Out += "  mp" + std::to_string(J) + " = &mx" +
           std::to_string(R.below(MScalars)) + ";\n";
  for (unsigned J = 0; J < MPtrPtrs; ++J)
    Out += "  mq" + std::to_string(J) + " = &mp" +
           std::to_string(R.below(MPtrs)) + ";\n";
  if (Cfg.UseFunctionPointers) {
    // One unconditional indirect call: the fnptr gate fires for every
    // query against this workload, not just when the dice landed right.
    Out += "  mfp = ftab[0];\n";
    Out += "  mx0 = mfp(mp0, mq0, 2);\n";
  }
  auto MPtrName = [&] { return "mp" + std::to_string(R.below(MPtrs)); };
  auto MPtrPtrName = [&] { return "mq" + std::to_string(R.below(MPtrPtrs)); };
  auto MScalarName = [&] { return "mx" + std::to_string(R.below(MScalars)); };
  auto GPtrName = [&] { return "gp" + std::to_string(R.below(Cfg.NumGlobals)); };
  auto GScalarName = [&] {
    return "g" + std::to_string(R.below(Cfg.NumGlobals));
  };
  unsigned CallsLeft = 3;
  for (unsigned S = 0; S < Cfg.MainStmts; ++S) {
    if (CallsLeft && R.chance(25)) {
      Out += "  mx0 = f" + std::to_string(R.below(N)) + "(" + MPtrName() +
             ", " + MPtrPtrName() + ", 3);\n";
      --CallsLeft;
      continue;
    }
    switch (R.below(8)) {
    case 0:
      Out += "  " + MPtrName() + " = &" + MScalarName() + ";\n";
      break;
    case 1:
      Out += "  " + MPtrName() + " = &" + GScalarName() + ";\n";
      break;
    case 2:
      Out += "  " + MPtrName() + " = " + MPtrName() + ";\n";
      break;
    case 3:
      Out += "  " + MPtrPtrName() + " = &" + MPtrName() + ";\n";
      break;
    case 4:
      Out += "  if (" + MPtrPtrName() + " != NULL) " + MPtrName() + " = *" +
             MPtrPtrName() + ";\n";
      break;
    case 5:
      Out += "  " + GPtrName() + " = &" + GScalarName() + ";\n";
      break;
    case 6:
      Out += "  " + GPtrName() + " = " + MPtrName() + ";\n";
      break;
    default:
      Out += "  " + MPtrName() + " = (int *)malloc(4);\n";
      break;
    }
  }
  Out += "  printf(\"%d\\n\", mx0 + mx1 + mx2);\n";
  Out += "  return 0;\n";
  Out += "}\n";
  W.Source = std::move(Out);

  // Query set with the requested skew. Hot names live in main's frame;
  // cold names are pointer globals (their triples sit in every helper
  // call's conservative mod set, so the slice stays nearly whole).
  auto Stars = [&](unsigned Max) { return std::string(R.below(Max + 1), '*'); };
  for (unsigned Q = 0; Q < Cfg.NumQueries; ++Q) {
    QuerySpec Spec;
    Spec.Hot = R.chance(Cfg.HotPercent);
    std::string N1, N2;
    if (Spec.Hot) {
      N1 = R.chance(30) ? MPtrPtrName() : MPtrName();
      N2 = R.chance(30) ? MPtrPtrName() : MPtrName();
    } else {
      N1 = GPtrName();
      N2 = R.chance(50) ? GPtrName() : MPtrName();
    }
    if (R.chance(50)) {
      Spec.K = QuerySpec::Kind::PointsTo;
      Spec.Name = N1;
    } else {
      Spec.K = QuerySpec::Kind::Alias;
      Spec.A = Stars(2) + N1;
      Spec.B = Stars(2) + N2;
    }
    W.Queries.push_back(std::move(Spec));
  }
  return W;
}

std::string mcpta::wlgen::livcSource(unsigned TotalFns, unsigned NumArrays,
                                     unsigned PerArray) {
  assert(NumArrays * PerArray <= TotalFns &&
         "arrays cannot hold more functions than exist");
  std::string Out;
  Out += "int printf(char *fmt, ...);\n\n";
  Out += "double data[64];\n";
  Out += "double out[64];\n\n";

  // Kernels: each reads/writes through its pointer arguments.
  for (unsigned I = 0; I < TotalFns; ++I) {
    std::string N = std::to_string(I);
    Out += "int kernel" + N + "(double *x, double *y, int n) {\n";
    Out += "  int i;\n";
    Out += "  for (i = 0; i < n; i++)\n";
    Out += "    y[i] = y[i] + x[i] * " + std::to_string(I % 7 + 1) +
           ".0;\n";
    Out += "  return n;\n";
    Out += "}\n";
  }
  Out += "\n";

  // NumArrays global arrays of function pointers over the first
  // NumArrays*PerArray kernels — these are the address-taken functions.
  for (unsigned A = 0; A < NumArrays; ++A) {
    Out += "int (*loops" + std::to_string(A) + "[" +
           std::to_string(PerArray) + "])(double *, double *, int) = {";
    for (unsigned I = 0; I < PerArray; ++I) {
      if (I)
        Out += ", ";
      Out += "kernel" + std::to_string(A * PerArray + I);
    }
    Out += "};\n";
  }
  Out += "\n";

  Out += "int main(void) {\n";
  Out += "  int i;\n";
  Out += "  int total;\n";
  Out += "  int (*f)(double *, double *, int);\n";
  Out += "  total = 0;\n";
  // One indirect call site per array, each inside a loop, each through
  // a scalar local function pointer (the paper's exact description).
  for (unsigned A = 0; A < NumArrays; ++A) {
    std::string N = std::to_string(A);
    Out += "  for (i = 0; i < " + std::to_string(PerArray) + "; i++) {\n";
    Out += "    f = loops" + N + "[i];\n";
    Out += "    total = total + f(data, out, 64);\n";
    Out += "  }\n";
  }
  // The remaining kernels are called directly (addresses never taken).
  for (unsigned I = NumArrays * PerArray; I < TotalFns; ++I)
    Out += "  total = total + kernel" + std::to_string(I) +
           "(data, out, 64);\n";
  Out += "  printf(\"%d\\n\", total);\n";
  Out += "  return 0;\n";
  Out += "}\n";
  return Out;
}

std::string mcpta::wlgen::pathologicalSource(unsigned Depth, unsigned Fanout,
                                             unsigned NumHandlers,
                                             unsigned RecDepth) {
  std::string Out;
  Out += "int printf(char *fmt, ...);\n\n";
  Out += "int ga; int gb; int gc;\n";
  Out += "int *gp; int *gq; int **gpp;\n\n";

  // Bounded mutual recursion churns the Figure 4 generalization passes.
  Out += "int recB(int *p, int **q, int d);\n";
  Out += "int recA(int *p, int **q, int d) {\n";
  Out += "  int la;\n";
  Out += "  if (d > 0) {\n";
  Out += "    gp = p;\n";
  Out += "    *q = &la;\n";
  Out += "    recB(&ga, &gp, d - 1);\n";
  Out += "    recB(p, q, d - 1);\n";
  Out += "  }\n";
  Out += "  return d;\n";
  Out += "}\n";
  Out += "int recB(int *p, int **q, int d) {\n";
  Out += "  if (d > 0) {\n";
  Out += "    gq = *q;\n";
  Out += "    recA(&gb, &gq, d - 1);\n";
  Out += "  }\n";
  Out += "  return d;\n";
  Out += "}\n\n";

  // Handlers reached only through the function-pointer table.
  for (unsigned H = 0; H < NumHandlers; ++H) {
    std::string N = std::to_string(H);
    Out += "int h" + N + "(int *p, int **q, int d) {\n";
    Out += "  gp = p;\n";
    Out += "  *q = &g";
    Out += "abc"[H % 3];
    Out += ";\n";
    Out += "  recA(p, q, d);\n";
    Out += "  return d + " + N + ";\n";
    Out += "}\n";
  }
  Out += "\nint (*ftab[" + std::to_string(NumHandlers) +
         "])(int *, int **, int) = {";
  for (unsigned H = 0; H < NumHandlers; ++H) {
    if (H)
      Out += ", ";
    Out += "h" + std::to_string(H);
  }
  Out += "};\n\n";

  // The deepest level fans out through the table (Sec. 5 growth)...
  Out += "int level" + std::to_string(Depth) + "(int *p, int **q, int d) {\n";
  Out += "  int i;\n";
  Out += "  int t;\n";
  Out += "  int (*f)(int *, int **, int);\n";
  Out += "  t = 0;\n";
  Out += "  for (i = 0; i < " + std::to_string(NumHandlers) + "; i++) {\n";
  Out += "    f = ftab[i];\n";
  Out += "    t = t + f(p, q, d);\n";
  Out += "  }\n";
  Out += "  return t;\n";
  Out += "}\n";

  // ...and every level above it calls the next level from Fanout
  // distinct call sites: Fanout^Depth invocation-graph contexts.
  for (unsigned L = Depth; L > 0; --L) {
    std::string Cur = std::to_string(L - 1);
    std::string Next = std::to_string(L);
    Out += "int level" + Cur + "(int *p, int **q, int d) {\n";
    Out += "  int lx;\n";
    Out += "  int *lp;\n";
    Out += "  int t;\n";
    Out += "  lp = &lx;\n";
    Out += "  t = 0;\n";
    for (unsigned F = 0; F < Fanout; ++F) {
      switch (F % 3) {
      case 0:
        Out += "  t = t + level" + Next + "(p, q, d);\n";
        break;
      case 1:
        Out += "  gp = lp;\n";
        Out += "  t = t + level" + Next + "(lp, &gp, d);\n";
        break;
      case 2:
        Out += "  *q = &ga;\n";
        Out += "  t = t + level" + Next + "(&gb, q, d);\n";
        break;
      }
    }
    Out += "  return t;\n";
    Out += "}\n";
  }

  Out += "\nint main(void) {\n";
  Out += "  int r;\n";
  Out += "  gp = &ga;\n";
  Out += "  gq = &gb;\n";
  Out += "  gpp = &gp;\n";
  Out += "  r = level0(&gc, gpp, " + std::to_string(RecDepth) + ");\n";
  Out += "  printf(\"%d\\n\", r);\n";
  Out += "  return 0;\n";
  Out += "}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// mutateSource — deterministic small-edit generator
//===----------------------------------------------------------------------===//

namespace {

/// One lexed token of the seed source. Comments and whitespace are
/// skipped; multi-character operators are single tokens so '=' can be
/// told apart from '==', '->' from '-', etc.
struct Tok {
  enum Kind { Ident, Number, Punct, Text } K;
  size_t Off;
  size_t Len;
};

std::vector<Tok> lexSource(const std::string &S) {
  std::vector<Tok> Toks;
  size_t I = 0, N = S.size();
  auto isIdent = [](char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
  };
  while (I < N) {
    char C = S[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && S[I + 1] == '*') {
      size_t E = S.find("*/", I + 2);
      I = (E == std::string::npos) ? N : E + 2;
      continue;
    }
    if (C == '/' && I + 1 < N && S[I + 1] == '/') {
      size_t E = S.find('\n', I + 2);
      I = (E == std::string::npos) ? N : E + 1;
      continue;
    }
    if (C == '"' || C == '\'') {
      size_t E = I + 1;
      while (E < N && S[E] != C) {
        if (S[E] == '\\')
          ++E;
        ++E;
      }
      E = (E < N) ? E + 1 : N;
      Toks.push_back({Tok::Text, I, E - I});
      I = E;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t E = I;
      while (E < N && (isIdent(S[E]) || S[E] == '.'))
        ++E;
      Toks.push_back({Tok::Number, I, E - I});
      I = E;
      continue;
    }
    if (isIdent(C)) {
      size_t E = I;
      while (E < N && isIdent(S[E]))
        ++E;
      Toks.push_back({Tok::Ident, I, E - I});
      I = E;
      continue;
    }
    static const char *Two[] = {"->", "==", "!=", "<=", ">=", "&&", "||",
                                "++", "--", "+=", "-=", "*=", "/=", "%=",
                                "<<", ">>"};
    size_t Len = 1;
    for (const char *T : Two)
      if (I + 1 < N && S[I] == T[0] && S[I + 1] == T[1]) {
        Len = 2;
        break;
      }
    Toks.push_back({Tok::Punct, I, Len});
    I += Len;
  }
  return Toks;
}

/// Token scanner over a lexed seed with the structure mutateSource
/// needs: top-level function definitions and their body token ranges.
class SeedScan {
public:
  struct FnDef {
    std::string Name;
    size_t LBrace; ///< token index of the body '{'
    size_t RBrace; ///< token index of the matching '}'
  };

  SeedScan(const std::string &S, std::vector<Tok> T)
      : Src(S), Toks(std::move(T)) {
    findFunctions();
  }

  std::string spell(size_t TokIdx) const {
    const Tok &T = Toks[TokIdx];
    return Src.substr(T.Off, T.Len);
  }
  bool is(size_t TokIdx, const char *P) const {
    const Tok &T = Toks[TokIdx];
    return Src.compare(T.Off, T.Len, P) == 0 && std::strlen(P) == T.Len;
  }
  bool identExists(const std::string &Name) const {
    for (size_t I = 0; I < Toks.size(); ++I)
      if (Toks[I].K == Tok::Ident && spell(I) == Name)
        return true;
    return false;
  }

  const std::string &Src;
  std::vector<Tok> Toks;
  std::vector<FnDef> Fns;

private:
  void findFunctions() {
    int Depth = 0;
    for (size_t I = 0; I + 1 < Toks.size(); ++I) {
      if (Toks[I].K == Tok::Punct) {
        if (is(I, "{"))
          ++Depth;
        else if (is(I, "}"))
          --Depth;
        continue;
      }
      if (Depth != 0 || Toks[I].K != Tok::Ident || !is(I + 1, "("))
        continue;
      // Find the matching ')' of the parameter list.
      int Paren = 0;
      size_t J = I + 1;
      for (; J < Toks.size(); ++J) {
        if (is(J, "("))
          ++Paren;
        else if (is(J, ")") && --Paren == 0)
          break;
      }
      if (J + 1 >= Toks.size() || !is(J + 1, "{"))
        continue; // prototype or call
      size_t LB = J + 1;
      int Body = 0;
      size_t RB = LB;
      for (; RB < Toks.size(); ++RB) {
        if (is(RB, "{"))
          ++Body;
        else if (is(RB, "}") && --Body == 0)
          break;
      }
      Fns.push_back({spell(I), LB, RB});
      I = RB; // Depth is balanced again after the body
    }
  }
};

bool isTypeKeyword(const std::string &S) {
  return S == "int" || S == "char" || S == "float" || S == "double" ||
         S == "void" || S == "struct" || S == "union" || S == "unsigned" ||
         S == "signed" || S == "long" || S == "short";
}

bool isKeyword(const std::string &S) {
  return isTypeKeyword(S) || S == "return" || S == "if" || S == "else" ||
         S == "while" || S == "for" || S == "do" || S == "switch" ||
         S == "case" || S == "default" || S == "break" || S == "continue" ||
         S == "goto" || S == "sizeof" || S == "static" || S == "extern";
}

/// A simple local declaration in a function body: `<type> *... name ;`
/// (single declarator, no initializer, no array suffix). TypeText is the
/// normalized type+stars spelling, for same-type pairing.
struct LocalDecl {
  size_t FnIdx;
  size_t NameTok;
  std::string TypeText;
};

std::vector<LocalDecl> collectLocalDecls(const SeedScan &SS) {
  std::vector<LocalDecl> Out;
  for (size_t F = 0; F < SS.Fns.size(); ++F) {
    const SeedScan::FnDef &Fn = SS.Fns[F];
    bool AtStmtStart = true;
    for (size_t I = Fn.LBrace + 1; I < Fn.RBrace; ++I) {
      if (SS.Toks[I].K == Tok::Punct) {
        std::string P = SS.spell(I);
        AtStmtStart = (P == ";" || P == "{" || P == "}");
        continue;
      }
      if (!AtStmtStart || SS.Toks[I].K != Tok::Ident) {
        AtStmtStart = false;
        continue;
      }
      std::string First = SS.spell(I);
      AtStmtStart = false;
      if (!isTypeKeyword(First))
        continue;
      size_t J = I;
      std::string Type = First;
      if (First == "struct" || First == "union") {
        if (J + 1 >= Fn.RBrace || SS.Toks[J + 1].K != Tok::Ident)
          continue;
        Type += " " + SS.spell(J + 1);
        J += 1;
      }
      while (J + 1 < Fn.RBrace && SS.is(J + 1, "*")) {
        Type += "*";
        J += 1;
      }
      if (J + 2 >= Fn.RBrace || SS.Toks[J + 1].K != Tok::Ident ||
          !SS.is(J + 2, ";"))
        continue;
      Out.push_back({F, J + 1, Type});
      I = J + 2;
      AtStmtStart = true;
    }
  }
  return Out;
}

/// The insertion offset for appending a statement at the end of a
/// function body: before the body's final top-level `return` statement
/// when there is one (keeping the new statement reachable), else before
/// the closing '}'.
size_t appendOffset(const SeedScan &SS, const SeedScan::FnDef &Fn) {
  int Depth = 0;
  size_t LastStmtStart = 0;
  bool HaveReturn = false;
  bool AtStmtStart = true;
  for (size_t I = Fn.LBrace + 1; I < Fn.RBrace; ++I) {
    if (AtStmtStart && Depth == 0) {
      LastStmtStart = I;
      HaveReturn = SS.Toks[I].K == Tok::Ident && SS.spell(I) == "return";
    }
    AtStmtStart = false;
    if (SS.Toks[I].K == Tok::Punct) {
      std::string P = SS.spell(I);
      if (P == "{")
        ++Depth;
      else if (P == "}")
        --Depth;
      AtStmtStart = (P == ";" || P == "{" || P == "}");
    }
  }
  if (HaveReturn)
    return SS.Toks[LastStmtStart].Off;
  return SS.Toks[Fn.RBrace].Off;
}

} // namespace

const char *wlgen::mutationKindName(MutationKind K) {
  switch (K) {
  case MutationKind::RenameLocal:
    return "RenameLocal";
  case MutationKind::TweakConstant:
    return "TweakConstant";
  case MutationKind::AddAssignment:
    return "AddAssignment";
  case MutationKind::RemoveAssignment:
    return "RemoveAssignment";
  case MutationKind::AddCall:
    return "AddCall";
  }
  return "?";
}

std::string wlgen::mutateSource(const std::string &Seed, MutationKind Kind,
                                uint64_t Salt) {
  SeedScan SS(Seed, lexSource(Seed));
  if (SS.Fns.empty())
    return Seed;

  switch (Kind) {
  case MutationKind::RenameLocal: {
    std::vector<LocalDecl> Decls = collectLocalDecls(SS);
    if (Decls.empty())
      return Seed;
    const LocalDecl &D = Decls[Salt % Decls.size()];
    const SeedScan::FnDef &Fn = SS.Fns[D.FnIdx];
    std::string Old = SS.spell(D.NameTok);
    std::string New = Old + "_r";
    while (SS.identExists(New))
      New += "r";
    // Rewrite every non-field occurrence in the declaring function,
    // back to front so earlier offsets stay valid.
    std::string Out = Seed;
    for (size_t I = Fn.RBrace; I > Fn.LBrace; --I) {
      if (SS.Toks[I].K != Tok::Ident || SS.spell(I) != Old)
        continue;
      if (I > 0 && (SS.is(I - 1, ".") || SS.is(I - 1, "->") ||
                    SS.is(I - 1, "struct")))
        continue;
      Out.replace(SS.Toks[I].Off, SS.Toks[I].Len, New);
    }
    return Out;
  }

  case MutationKind::TweakConstant: {
    // Integer literals in function bodies, excluding array subscripts
    // and sizes (changing those would change types or trip counts).
    std::vector<size_t> Cands;
    for (const SeedScan::FnDef &Fn : SS.Fns)
      for (size_t I = Fn.LBrace + 1; I < Fn.RBrace; ++I) {
        if (SS.Toks[I].K != Tok::Number)
          continue;
        if (SS.spell(I).find('.') != std::string::npos)
          continue;
        if (I > 0 && SS.is(I - 1, "["))
          continue;
        if (I + 1 < SS.Toks.size() && SS.is(I + 1, "]"))
          continue;
        Cands.push_back(I);
      }
    if (Cands.empty())
      return Seed;
    size_t I = Cands[Salt % Cands.size()];
    unsigned long long V = std::strtoull(SS.spell(I).c_str(), nullptr, 0);
    std::string Out = Seed;
    Out.replace(SS.Toks[I].Off, SS.Toks[I].Len, std::to_string(V + 1));
    return Out;
  }

  case MutationKind::AddAssignment: {
    // First pair of distinct same-typed locals per function; Salt picks
    // the function.
    std::vector<LocalDecl> Decls = collectLocalDecls(SS);
    struct Pair {
      size_t FnIdx;
      std::string Lhs, Rhs;
    };
    std::vector<Pair> Cands;
    for (size_t F = 0; F < SS.Fns.size(); ++F) {
      bool Found = false;
      for (size_t A = 0; A < Decls.size() && !Found; ++A) {
        if (Decls[A].FnIdx != F)
          continue;
        for (size_t B = A + 1; B < Decls.size() && !Found; ++B)
          if (Decls[B].FnIdx == F && Decls[B].TypeText == Decls[A].TypeText) {
            Cands.push_back({F, SS.spell(Decls[A].NameTok),
                             SS.spell(Decls[B].NameTok)});
            Found = true;
          }
      }
    }
    if (Cands.empty())
      return Seed;
    const Pair &P = Cands[Salt % Cands.size()];
    size_t At = appendOffset(SS, SS.Fns[P.FnIdx]);
    std::string Out = Seed;
    Out.insert(At, P.Lhs + " = " + P.Rhs + ";\n  ");
    return Out;
  }

  case MutationKind::RemoveAssignment: {
    // Simple assignment statements: `lvalue = rhs;` with no calls, no
    // nested braces, at any nesting depth inside a body.
    struct Span {
      size_t FirstTok, SemiTok;
    };
    std::vector<Span> Cands;
    for (const SeedScan::FnDef &Fn : SS.Fns) {
      bool AtStmtStart = true;
      for (size_t I = Fn.LBrace + 1; I < Fn.RBrace; ++I) {
        bool StartsHere = AtStmtStart;
        if (SS.Toks[I].K == Tok::Punct) {
          std::string P = SS.spell(I);
          AtStmtStart = (P == ";" || P == "{" || P == "}");
        } else {
          AtStmtStart = false;
        }
        if (!StartsHere || SS.Toks[I].K != Tok::Ident ||
            isKeyword(SS.spell(I)))
          continue;
        bool SawAssign = false, Bad = false;
        size_t J = I;
        for (; J < Fn.RBrace && !SS.is(J, ";"); ++J) {
          if (SS.is(J, "=") && SS.Toks[J].Len == 1)
            SawAssign = true;
          if (SS.is(J, "(") || SS.is(J, ")") || SS.is(J, "{") ||
              SS.is(J, "}"))
            Bad = true;
        }
        if (SawAssign && !Bad && J < Fn.RBrace)
          Cands.push_back({I, J});
      }
    }
    if (Cands.empty())
      return Seed;
    const Span &C = Cands[Salt % Cands.size()];
    std::string Out = Seed;
    size_t Begin = SS.Toks[C.FirstTok].Off;
    size_t End = SS.Toks[C.SemiTok].Off + 1;
    Out.erase(Begin, End - Begin);
    return Out;
  }

  case MutationKind::AddCall: {
    std::string Callee = "mut_probe";
    while (SS.identExists(Callee))
      Callee += "0";
    const SeedScan::FnDef &Fn = SS.Fns[Salt % SS.Fns.size()];
    size_t At = appendOffset(SS, Fn);
    std::string Out = Seed;
    Out.insert(At, Callee + "();\n  ");
    Out.insert(0, "void " + Callee + "(void) { }\n");
    return Out;
  }
  }
  return Seed;
}
