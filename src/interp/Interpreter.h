//===- Interpreter.h - Concrete SIMPLE interpreter --------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete interpreter for SIMPLE used as the soundness oracle of the
/// points-to analysis (property P1 of DESIGN.md, checking Definition 3.3
/// of the paper against real executions):
///
///   - every pointer fact observed at the entry of a statement — cell c
///     holds the address of location l, both nameable in the current
///     scope — must be covered by a (abs(c), abs(l), D|P) pair in the
///     analysis' merged input set for that statement;
///   - every definite pair (x, y, D) whose source is a non-summary
///     location nameable in the current scope must agree with the
///     concrete store: x's cell holds exactly y (or NULL when y is the
///     NULL target).
///
/// Facts involving locations of other activation frames are skipped:
/// their abstract names are context-dependent symbolic names that only
/// the invocation graph's map information can relate.
///
/// The interpreter executes real control flow (conditions, switch
/// dispatch, concrete array subscripts carried by Accessor) with a step
/// budget, and models printf/strcmp/strcpy/strlen/rand.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_INTERP_INTERPRETER_H
#define MCPTA_INTERP_INTERPRETER_H

#include "pointsto/Analyzer.h"
#include "simple/SimpleIR.h"

#include <string>
#include <vector>

namespace mcpta {
namespace interp {

struct RunResult {
  /// The program ran to completion within the step budget.
  bool Completed = false;
  uint64_t Steps = 0;
  long long ExitValue = 0;
  /// Soundness violations against the analysis (empty = sound on this
  /// execution). Each entry names the statement and the offending fact.
  std::vector<std::string> Violations;
  /// Runtime trouble (deref of undef, missing function, ...) that
  /// stopped execution early; empty if none.
  std::string Error;
};

struct InterpOptions {
  uint64_t MaxSteps = 500000;
  /// When false, only execute (no analysis cross-checking).
  bool CheckAgainstAnalysis = true;
};

/// Executes the program's main and checks each step against the
/// analysis result (pass the result from Analyzer::run on the same
/// Program; StmtIn recording must have been enabled).
RunResult runAndCheck(const simple::Program &Prog,
                      const pta::Analyzer::Result &Res,
                      const InterpOptions &Opts);

/// Executes without checking.
RunResult run(const simple::Program &Prog, uint64_t MaxSteps = 500000);

} // namespace interp
} // namespace mcpta

#endif // MCPTA_INTERP_INTERPRETER_H
