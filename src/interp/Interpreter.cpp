//===- Interpreter.cpp - Concrete SIMPLE interpreter ---------------------------===//

#include "interp/Interpreter.h"

#include "pointsto/LRLocations.h"

#include <cassert>
#include <map>
#include <set>

using namespace mcpta;
using namespace mcpta::interp;
using namespace mcpta::simple;
using namespace mcpta::pta;
namespace cf = mcpta::cfront;

namespace {

//===----------------------------------------------------------------------===//
// Concrete memory model
//===----------------------------------------------------------------------===//

/// One step inside an object: a struct field or a concrete array index.
struct PathKey {
  const cf::FieldDecl *Field = nullptr;
  long long Index = 0;
  bool IsField = false;

  static PathKey field(const cf::FieldDecl *F) { return {F, 0, true}; }
  static PathKey elem(long long I) { return {nullptr, I, false}; }

  bool operator<(const PathKey &O) const {
    if (IsField != O.IsField)
      return IsField < O.IsField;
    if (IsField)
      return Field < O.Field;
    return Index < O.Index;
  }
  bool operator==(const PathKey &O) const {
    return IsField == O.IsField && Field == O.Field && Index == O.Index;
  }
};

/// A concrete address: object id plus a path to a cell inside it.
struct Address {
  unsigned Obj = 0;
  std::vector<PathKey> Path;

  bool operator==(const Address &O) const {
    return Obj == O.Obj && Path == O.Path;
  }
};

struct Value {
  enum class Kind { Undef, Int, Fp, Ptr, Fn, Null } K = Kind::Undef;
  long long I = 0;
  double F = 0;
  Address A;
  const cf::FunctionDecl *Fn = nullptr;

  static Value undef() { return {}; }
  static Value integer(long long V) {
    Value X;
    X.K = Kind::Int;
    X.I = V;
    return X;
  }
  static Value fp(double V) {
    Value X;
    X.K = Kind::Fp;
    X.F = V;
    return X;
  }
  static Value ptr(Address A) {
    Value X;
    X.K = Kind::Ptr;
    X.A = std::move(A);
    return X;
  }
  static Value fn(const cf::FunctionDecl *F) {
    Value X;
    X.K = Kind::Fn;
    X.Fn = F;
    return X;
  }
  static Value null() {
    Value X;
    X.K = Kind::Null;
    return X;
  }

  long long asInt() const {
    switch (K) {
    case Kind::Int: return I;
    case Kind::Fp: return static_cast<long long>(F);
    case Kind::Null: return 0;
    case Kind::Ptr: return 1; // non-null pointers are truthy
    case Kind::Fn: return 1;
    case Kind::Undef: return 0;
    }
    return 0;
  }
  double asFp() const { return K == Kind::Fp ? F : static_cast<double>(asInt()); }
  bool truthy() const { return asInt() != 0; }
};

/// One allocated object: a variable instance, a global, a heap block, or
/// string storage.
struct MemObject {
  enum class Kind { Local, Global, Heap, String } K = Kind::Local;
  const cf::VarDecl *Var = nullptr; // Local/Global
  unsigned StringId = 0;
  unsigned FrameId = 0; // owning activation for locals
  std::map<std::vector<PathKey>, Value> Cells;
};

struct Frame {
  const cf::FunctionDecl *Fn = nullptr;
  unsigned FrameId = 0;
  std::map<const cf::VarDecl *, unsigned> Objects; // var -> object id
  Value RetVal = Value::integer(0);
};

enum class Signal { Normal, Break, Continue, Return, Halt, Error };

//===----------------------------------------------------------------------===//
// Interpreter engine
//===----------------------------------------------------------------------===//

class Engine {
public:
  Engine(const Program &Prog, const pta::Analyzer::Result *Res,
         const InterpOptions &Opts)
      : Prog(Prog), Res(Res), Opts(Opts) {}

  RunResult run();

private:
  //===--------------------------------------------------------------------===//
  // Memory helpers
  //===--------------------------------------------------------------------===//
  unsigned allocObject(MemObject::Kind K) {
    Objects.push_back(MemObject());
    Objects.back().K = K;
    return static_cast<unsigned>(Objects.size() - 1);
  }

  /// Initializes pointer-typed cells of an object to NULL, mirroring the
  /// analysis' initialization.
  void initPointerCells(unsigned Obj, const cf::Type *Ty,
                        std::vector<PathKey> &Prefix);

  Value readCell(const Address &A) {
    if (A.Obj >= Objects.size())
      return Value::undef();
    auto It = Objects[A.Obj].Cells.find(A.Path);
    if (It == Objects[A.Obj].Cells.end())
      return Value::undef();
    return It->second;
  }
  void writeCell(const Address &A, Value V) {
    if (A.Obj >= Objects.size())
      return;
    Objects[A.Obj].Cells[A.Path] = std::move(V);
  }

  unsigned stringObject(unsigned Id);

  //===--------------------------------------------------------------------===//
  // Evaluation
  //===--------------------------------------------------------------------===//
  long long indexValue(const Accessor &A);
  bool resolveRef(const Reference &Ref, Address &Out); // lvalue address
  Value evalRef(const Reference &Ref);                 // rvalue
  Value evalOperand(const Operand &O);
  Value evalBinary(cf::BinaryOp Op, const Value &L, const Value &R);
  Value evalUnary(cf::UnaryOp Op, const Value &V);

  //===--------------------------------------------------------------------===//
  // Execution
  //===--------------------------------------------------------------------===//
  Signal exec(const Stmt *S);
  Signal execAssign(const AssignStmt *A);
  Signal execCall(const CallInfo &CI, const Reference *LhsRef);
  Signal callFunction(const cf::FunctionDecl *F,
                      const std::vector<Value> &Args, Value &RetOut);
  Value callExtern(const cf::FunctionDecl *F, const std::vector<Value> &Args);
  void storeAggregate(const Address &Dst, const Address &Src,
                      const cf::Type *Ty, std::vector<PathKey> &Prefix);

  std::string readCString(Value V);
  void writeCString(const Address &A, const std::string &S);

  //===--------------------------------------------------------------------===//
  // Soundness checking
  //===--------------------------------------------------------------------===//
  const Location *abstractAddress(const Address &A, bool AsTarget);
  void checkStmt(const Stmt *S);

  const Program &Prog;
  const pta::Analyzer::Result *Res;
  InterpOptions Opts;
  RunResult Result;

  std::vector<MemObject> Objects;
  std::vector<Frame> Frames; // stack; back() is current
  std::map<const cf::VarDecl *, unsigned> GlobalObjects;
  std::map<unsigned, unsigned> StringObjects;
  unsigned NextFrameId = 1;
  uint64_t RandState = 12345;
  bool StepLimitHit = false;

  std::unique_ptr<LREvaluator> Eval; // for abstraction lookups
};

void Engine::initPointerCells(unsigned Obj, const cf::Type *Ty,
                              std::vector<PathKey> &Prefix) {
  if (!Ty)
    return;
  switch (Ty->kind()) {
  case cf::Type::Kind::Pointer:
    Objects[Obj].Cells[Prefix] = Value::null();
    return;
  case cf::Type::Kind::Record:
    for (const cf::FieldDecl *F :
         cf::cast<cf::RecordType>(Ty)->decl()->fields()) {
      Prefix.push_back(PathKey::field(F));
      initPointerCells(Obj, F->type(), Prefix);
      Prefix.pop_back();
    }
    return;
  case cf::Type::Kind::Array: {
    const auto *AT = cf::cast<cf::ArrayType>(Ty);
    if (!AT->element()->isPointerBearing())
      return;
    long N = AT->size() < 0 ? 1 : AT->size();
    for (long I = 0; I < N; ++I) {
      Prefix.push_back(PathKey::elem(I));
      initPointerCells(Obj, AT->element(), Prefix);
      Prefix.pop_back();
    }
    return;
  }
  default:
    return;
  }
}

unsigned Engine::stringObject(unsigned Id) {
  auto It = StringObjects.find(Id);
  if (It != StringObjects.end())
    return It->second;
  unsigned Obj = allocObject(MemObject::Kind::String);
  Objects[Obj].StringId = Id;
  const std::string &S = Prog.stringLiterals()[Id];
  for (size_t I = 0; I <= S.size(); ++I)
    Objects[Obj].Cells[{PathKey::elem(static_cast<long long>(I))}] =
        Value::integer(I < S.size() ? S[I] : 0);
  StringObjects[Id] = Obj;
  return Obj;
}

long long Engine::indexValue(const Accessor &A) {
  assert(A.K == Accessor::Kind::Index);
  if (!A.IndexVar)
    return A.IndexConst;
  Frame &F = Frames.back();
  auto It = F.Objects.find(A.IndexVar);
  if (It == F.Objects.end())
    return 0;
  return readCell({It->second, {}}).asInt();
}

bool Engine::resolveRef(const Reference &Ref, Address &Out) {
  Frame &F = Frames.back();
  Address A;
  if (const cf::VarDecl *V = Ref.Base) {
    if (V->isGlobal()) {
      auto It = GlobalObjects.find(V);
      if (It == GlobalObjects.end())
        return false;
      A.Obj = It->second;
    } else {
      auto It = F.Objects.find(V);
      if (It == F.Objects.end())
        return false;
      A.Obj = It->second;
    }
  } else {
    return false;
  }

  if (Ref.Deref) {
    Value P = readCell(A);
    if (P.K != Value::Kind::Ptr)
      return false; // NULL/undef dereference: caller treats as no-op
    A = P.A;
  }
  for (const Accessor &Acc : Ref.Path) {
    if (Acc.K == Accessor::Kind::Field) {
      A.Path.push_back(PathKey::field(Acc.Field));
      continue;
    }
    long long I = indexValue(Acc);
    // Shift accessors (p[i]) offset the cell the pointer designates;
    // select accessors (a[i]) descend into an aggregate. A zero shift
    // on a scalar cell (path empty or ending in a field) is the cell
    // itself, so *p and p[0] resolve to the same address.
    if (Acc.IsShift && !A.Path.empty() && !A.Path.back().IsField) {
      A.Path.back().Index += I;
      continue;
    }
    if (Acc.IsShift && I == 0)
      continue;
    A.Path.push_back(PathKey::elem(I));
  }
  Out = std::move(A);
  return true;
}

Value Engine::evalRef(const Reference &Ref) {
  Address A;
  if (!resolveRef(Ref, A))
    return Value::undef();
  if (Ref.AddrOf)
    return Value::ptr(A);
  return readCell(A);
}

Value Engine::evalOperand(const Operand &O) {
  switch (O.K) {
  case Operand::Kind::Ref:
    return evalRef(O.Ref);
  case Operand::Kind::IntConst:
    return Value::integer(O.IntValue);
  case Operand::Kind::FloatConst:
    return Value::fp(O.FloatValue);
  case Operand::Kind::NullConst:
    return Value::null();
  case Operand::Kind::StringConst: {
    Address A;
    A.Obj = stringObject(O.StringId);
    A.Path.push_back(PathKey::elem(0));
    return Value::ptr(A);
  }
  case Operand::Kind::FunctionAddr:
    return Value::fn(O.Fn);
  }
  return Value::undef();
}

Value Engine::evalUnary(cf::UnaryOp Op, const Value &V) {
  using UO = cf::UnaryOp;
  switch (Op) {
  case UO::Minus:
    if (V.K == Value::Kind::Fp)
      return Value::fp(-V.F);
    return Value::integer(-V.asInt());
  case UO::Not:
    return Value::integer(!V.truthy());
  case UO::BitNot:
    return Value::integer(~V.asInt());
  default:
    return V;
  }
}

Value Engine::evalBinary(cf::BinaryOp Op, const Value &L, const Value &R) {
  using BO = cf::BinaryOp;
  // Pointer arithmetic: shift the trailing element index.
  if (L.K == Value::Kind::Ptr && (Op == BO::Add || Op == BO::Sub)) {
    long long Off = R.asInt();
    if (Op == BO::Sub && R.K == Value::Kind::Ptr) {
      // ptr - ptr: element distance when in the same object.
      if (L.A.Obj == R.A.Obj && !L.A.Path.empty() && !R.A.Path.empty())
        return Value::integer(L.A.Path.back().Index -
                              R.A.Path.back().Index);
      return Value::integer(0);
    }
    Address A = L.A;
    long long Delta = Op == BO::Add ? Off : -Off;
    if (!A.Path.empty() && !A.Path.back().IsField)
      A.Path.back().Index += Delta;
    else if (Delta != 0)
      A.Path.push_back(PathKey::elem(Delta));
    return Value::ptr(A);
  }
  if (R.K == Value::Kind::Ptr && Op == BO::Add)
    return evalBinary(BO::Add, R, L);

  // Pointer comparisons.
  auto IsPtrish = [](const Value &V) {
    return V.K == Value::Kind::Ptr || V.K == Value::Kind::Null ||
           V.K == Value::Kind::Fn;
  };
  if (IsPtrish(L) || IsPtrish(R)) {
    bool Eq = false;
    if (L.K == Value::Kind::Null && R.K == Value::Kind::Null)
      Eq = true;
    else if (L.K == Value::Kind::Ptr && R.K == Value::Kind::Ptr)
      Eq = L.A == R.A;
    else if (L.K == Value::Kind::Fn && R.K == Value::Kind::Fn)
      Eq = L.Fn == R.Fn;
    else if ((L.K == Value::Kind::Null && R.asInt() == 0) ||
             (R.K == Value::Kind::Null && L.asInt() == 0))
      Eq = true;
    switch (Op) {
    case BO::Eq:
      return Value::integer(Eq);
    case BO::Ne:
      return Value::integer(!Eq);
    default:
      break;
    }
  }

  if (L.K == Value::Kind::Fp || R.K == Value::Kind::Fp) {
    double A = L.asFp(), B = R.asFp();
    switch (Op) {
    case BO::Add: return Value::fp(A + B);
    case BO::Sub: return Value::fp(A - B);
    case BO::Mul: return Value::fp(A * B);
    case BO::Div: return Value::fp(B != 0 ? A / B : 0);
    case BO::Lt: return Value::integer(A < B);
    case BO::Gt: return Value::integer(A > B);
    case BO::Le: return Value::integer(A <= B);
    case BO::Ge: return Value::integer(A >= B);
    case BO::Eq: return Value::integer(A == B);
    case BO::Ne: return Value::integer(A != B);
    default: break;
    }
    return Value::fp(0);
  }

  long long A = L.asInt(), B = R.asInt();
  switch (Op) {
  case BO::Add: return Value::integer(A + B);
  case BO::Sub: return Value::integer(A - B);
  case BO::Mul: return Value::integer(A * B);
  case BO::Div: return Value::integer(B ? A / B : 0);
  case BO::Rem: return Value::integer(B ? A % B : 0);
  case BO::Shl: return Value::integer(A << (B & 63));
  case BO::Shr: return Value::integer(A >> (B & 63));
  case BO::Lt: return Value::integer(A < B);
  case BO::Gt: return Value::integer(A > B);
  case BO::Le: return Value::integer(A <= B);
  case BO::Ge: return Value::integer(A >= B);
  case BO::Eq: return Value::integer(A == B);
  case BO::Ne: return Value::integer(A != B);
  case BO::BitAnd: return Value::integer(A & B);
  case BO::BitXor: return Value::integer(A ^ B);
  case BO::BitOr: return Value::integer(A | B);
  case BO::LogAnd: return Value::integer(A && B);
  case BO::LogOr: return Value::integer(A || B);
  case BO::Comma: return Value::integer(B);
  }
  return Value::integer(0);
}

//===----------------------------------------------------------------------===//
// Soundness checking
//===----------------------------------------------------------------------===//

const Location *Engine::abstractAddress(const Address &A, bool AsTarget) {
  (void)AsTarget;
  const MemObject &Obj = Objects[A.Obj];
  LocationTable &Locs = *Res->Locs;

  const Location *L = nullptr;
  switch (Obj.K) {
  case MemObject::Kind::Heap:
    return Locs.heap(); // the heap summary absorbs paths
  case MemObject::Kind::String:
    L = Locs.get(Locs.stringLit(
        Obj.StringId,
        nullptr)); // type was registered at analysis time if used
    break;
  case MemObject::Kind::Global:
    L = Locs.varLoc(Obj.Var);
    break;
  case MemObject::Kind::Local:
    // Only the current activation's locals have frame-independent
    // abstract names here.
    if (Obj.FrameId != Frames.back().FrameId)
      return nullptr;
    L = Locs.varLoc(Obj.Var);
    break;
  }
  for (const PathKey &K : A.Path) {
    if (K.IsField)
      L = Locs.withField(L, K.Field);
    else
      L = Locs.withElem(L, K.Index == 0);
  }
  return L;
}

void Engine::checkStmt(const Stmt *S) {
  if (!Opts.CheckAgainstAnalysis || !Res || !Res->Analyzed)
    return;
  if (S->id() >= Res->StmtIn.size() || !Res->StmtIn[S->id()]) {
    Result.Violations.push_back(
        "statement " + std::to_string(S->id()) +
        " executed but never reached by the analysis");
    return;
  }
  const PointsToSet &In = *Res->StmtIn[S->id()];
  LocationTable &Locs = *Res->Locs;

  // P1(a): every observable concrete pointer fact is covered.
  auto CheckObject = [&](unsigned ObjId) {
    const MemObject &Obj = Objects[ObjId];
    for (const auto &[Path, V] : Obj.Cells) {
      if (V.K != Value::Kind::Ptr && V.K != Value::Kind::Fn)
        continue;
      Address CellAddr{ObjId, Path};
      const Location *Src = abstractAddress(CellAddr, false);
      if (!Src)
        continue;
      const Location *Dst = nullptr;
      if (V.K == Value::Kind::Fn)
        Dst = Locs.fnLoc(V.Fn);
      else
        Dst = abstractAddress(V.A, true);
      if (!Dst)
        continue; // target not nameable in this scope
      if (!In.contains(Src, Dst))
        Result.Violations.push_back(
            "stmt " + std::to_string(S->id()) + ": concrete fact " +
            Src->str() + " -> " + Dst->str() +
            " missing from the analysis set");
    }
  };
  for (const auto &[V, ObjId] : GlobalObjects)
    CheckObject(ObjId);
  for (const auto &[V, ObjId] : Frames.back().Objects)
    CheckObject(ObjId);
  for (unsigned I = 0; I < Objects.size(); ++I)
    if (Objects[I].K == MemObject::Kind::Heap)
      CheckObject(I);

  // P1(b): definite pairs agree with the store.
  In.forEach(Locs, [&](const Location *Src, const Location *Dst, Def D) {
    if (D != Def::D || Src->isSummary())
      return;
    // Only check sources we can locate concretely: globals and current
    // frame variables with pure field/head paths.
    const Entity *Root = Src->root();
    unsigned ObjId = ~0u;
    if (Root->kind() == Entity::Kind::Variable) {
      const cf::VarDecl *V = Root->var();
      if (V->isGlobal()) {
        auto It = GlobalObjects.find(V);
        if (It == GlobalObjects.end())
          return;
        ObjId = It->second;
      } else {
        if (V->owner() != Frames.back().Fn)
          return;
        auto It = Frames.back().Objects.find(V);
        if (It == Frames.back().Objects.end())
          return;
        ObjId = It->second;
      }
    } else {
      return; // symbolic/heap/retval sources are not directly checkable
    }
    Address A;
    A.Obj = ObjId;
    for (const PathElem &PE : Src->path()) {
      if (PE.K == PathElem::Kind::Field)
        A.Path.push_back(PathKey::field(PE.Field));
      else if (PE.K == PathElem::Kind::Head)
        A.Path.push_back(PathKey::elem(0));
      else
        return; // tail sources are summaries (already excluded)
    }
    Value V = readCell(A);
    if (V.K == Value::Kind::Null || V.K == Value::Kind::Undef) {
      if (!Dst->isNull())
        Result.Violations.push_back(
            "stmt " + std::to_string(S->id()) + ": definite pair " +
            Src->str() + " -> " + Dst->str() + " but cell is NULL");
      return;
    }
    if (V.K == Value::Kind::Fn) {
      if (!Dst->isFunction() || Dst->root()->function() != V.Fn)
        Result.Violations.push_back(
            "stmt " + std::to_string(S->id()) + ": definite pair " +
            Src->str() + " -> " + Dst->str() + " but cell holds function");
      return;
    }
    if (V.K != Value::Kind::Ptr)
      return;
    const Location *Actual = abstractAddress(V.A, true);
    if (!Actual)
      return; // target in another frame; cannot compare
    if (Actual != Dst)
      Result.Violations.push_back(
          "stmt " + std::to_string(S->id()) + ": definite pair " +
          Src->str() + " -> " + Dst->str() + " but cell points to " +
          Actual->str());
  });
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

std::string Engine::readCString(Value V) {
  std::string S;
  if (V.K != Value::Kind::Ptr)
    return S;
  Address A = V.A;
  if (A.Path.empty() || A.Path.back().IsField)
    A.Path.push_back(PathKey::elem(0));
  for (int Guard = 0; Guard < 4096; ++Guard) {
    Value C = readCell(A);
    long long Ch = C.asInt();
    if (C.K == Value::Kind::Undef || Ch == 0)
      break;
    S += static_cast<char>(Ch);
    A.Path.back().Index += 1;
  }
  return S;
}

void Engine::writeCString(const Address &Base, const std::string &S) {
  Address A = Base;
  if (A.Path.empty() || A.Path.back().IsField)
    A.Path.push_back(PathKey::elem(0));
  for (size_t I = 0; I <= S.size(); ++I) {
    writeCell(A, Value::integer(I < S.size() ? S[I] : 0));
    A.Path.back().Index += 1;
  }
}

Value Engine::callExtern(const cf::FunctionDecl *F,
                         const std::vector<Value> &Args) {
  const std::string &Name = F->name();
  if (Name == "printf" || Name == "puts" || Name == "putchar" ||
      Name == "free" || Name == "srand")
    return Value::integer(0);
  if (Name == "rand") {
    RandState = RandState * 6364136223846793005ULL + 1442695040888963407ULL;
    return Value::integer(static_cast<long long>((RandState >> 33) & 0x7fffffff));
  }
  if (Name == "strlen" && !Args.empty())
    return Value::integer(static_cast<long long>(readCString(Args[0]).size()));
  if (Name == "strcmp" && Args.size() >= 2) {
    std::string A = readCString(Args[0]), B = readCString(Args[1]);
    return Value::integer(A < B ? -1 : (A == B ? 0 : 1));
  }
  if (Name == "strcpy" && Args.size() >= 2 &&
      Args[0].K == Value::Kind::Ptr) {
    writeCString(Args[0].A, readCString(Args[1]));
    return Args[0];
  }
  if (Name == "sqrt" && !Args.empty()) {
    double X = Args[0].asFp();
    // Newton's method; good enough for the corpus and dependency-free.
    double R = X > 1 ? X : 1;
    for (int I = 0; I < 40 && R > 0; ++I)
      R = (R + X / R) / 2;
    return Value::fp(R);
  }
  if (Name == "getchar")
    return Value::integer(-1); // deterministic EOF
  return Value::integer(0);
}

Signal Engine::callFunction(const cf::FunctionDecl *F,
                            const std::vector<Value> &Args, Value &RetOut) {
  const FunctionIR *FIR = Prog.findFunction(F);
  if (!FIR) {
    RetOut = callExtern(F, Args);
    return Signal::Normal;
  }
  if (Frames.size() > 512) {
    Result.Error = "call stack overflow (runaway recursion)";
    return Signal::Error;
  }

  Frame NewFrame;
  NewFrame.Fn = F;
  NewFrame.FrameId = NextFrameId++;
  // Allocate locals + params; pointers init to NULL like the analysis.
  auto AllocVar = [&](const cf::VarDecl *V) {
    unsigned Obj = allocObject(MemObject::Kind::Local);
    Objects[Obj].Var = V;
    Objects[Obj].FrameId = NewFrame.FrameId;
    std::vector<PathKey> Prefix;
    initPointerCells(Obj, V->type(), Prefix);
    NewFrame.Objects[V] = Obj;
    return Obj;
  };
  for (const cf::VarDecl *P : F->params())
    AllocVar(P);
  for (const cf::VarDecl *L : FIR->Locals)
    if (!NewFrame.Objects.count(L))
      AllocVar(L);

  // Bind arguments (aggregates copy cell-wise from the source object;
  // execCall passes a record arg as the source object's address).
  const auto &Params = F->params();
  Frames.push_back(std::move(NewFrame));
  for (size_t I = 0; I < Params.size() && I < Args.size(); ++I) {
    unsigned Obj = Frames.back().Objects[Params[I]];
    if (Params[I]->type()->isRecord()) {
      if (Args[I].K == Value::Kind::Ptr) {
        std::vector<PathKey> Prefix;
        storeAggregate({Obj, {}}, Args[I].A, Params[I]->type(), Prefix);
      }
      continue;
    }
    writeCell({Obj, {}}, Args[I]);
  }

  Signal Sig = exec(FIR->Body);
  if (Sig == Signal::Error || Sig == Signal::Halt) {
    Frames.pop_back();
    return Sig;
  }
  RetOut = Frames.back().RetVal;
  Frames.pop_back();
  return Signal::Normal;
}

Signal Engine::execCall(const CallInfo &CI, const Reference *LhsRef) {
  if (CI.NoReturn)
    return Signal::Halt;

  const cf::FunctionDecl *Callee = CI.Callee;
  if (CI.isIndirect()) {
    Value FP = evalRef(CI.FnPtr);
    if (FP.K != Value::Kind::Fn) {
      Result.Error = "indirect call through non-function value";
      return Signal::Error;
    }
    Callee = FP.Fn;
  }

  std::vector<Value> Args;
  for (const Operand &A : CI.Args) {
    // Record-typed plain var args pass the object's address; the callee
    // copies cells (C by-value semantics approximated: our generated
    // and corpus programs do not mutate by-value structs observably).
    if (A.isRef() && A.Ref.Ty && A.Ref.Ty->isRecord() && !A.Ref.Deref &&
        A.Ref.Path.empty() && !A.Ref.AddrOf) {
      Address Ad;
      if (resolveRef(A.Ref, Ad))
        Args.push_back(Value::ptr(Ad));
      else
        Args.push_back(Value::undef());
      continue;
    }
    Args.push_back(evalOperand(A));
  }

  Value Ret = Value::integer(0);
  Signal Sig = callFunction(Callee, Args, Ret);
  if (Sig != Signal::Normal)
    return Sig;
  if (LhsRef) {
    Address A;
    if (resolveRef(*LhsRef, A))
      writeCell(A, Ret);
  }
  return Signal::Normal;
}

void Engine::storeAggregate(const Address &Dst, const Address &Src,
                            const cf::Type *Ty,
                            std::vector<PathKey> &Prefix) {
  if (!Ty)
    return;
  switch (Ty->kind()) {
  case cf::Type::Kind::Record:
    for (const cf::FieldDecl *F :
         cf::cast<cf::RecordType>(Ty)->decl()->fields()) {
      Prefix.push_back(PathKey::field(F));
      storeAggregate(Dst, Src, F->type(), Prefix);
      Prefix.pop_back();
    }
    return;
  case cf::Type::Kind::Array: {
    const auto *AT = cf::cast<cf::ArrayType>(Ty);
    long N = AT->size() < 0 ? 0 : AT->size();
    for (long I = 0; I < N; ++I) {
      Prefix.push_back(PathKey::elem(I));
      storeAggregate(Dst, Src, AT->element(), Prefix);
      Prefix.pop_back();
    }
    return;
  }
  default: {
    Address SA = Src, DA = Dst;
    SA.Path.insert(SA.Path.end(), Prefix.begin(), Prefix.end());
    DA.Path.insert(DA.Path.end(), Prefix.begin(), Prefix.end());
    writeCell(DA, readCell(SA));
    return;
  }
  }
}

Signal Engine::execAssign(const AssignStmt *A) {
  // Aggregate copies move cells wholesale.
  if (A->Lhs.Ty && A->Lhs.Ty->isRecord() &&
      A->RK == AssignStmt::RhsKind::Operand && A->A.isRef()) {
    Address Dst, Src;
    if (resolveRef(A->Lhs, Dst) && resolveRef(A->A.Ref, Src)) {
      std::vector<PathKey> Prefix;
      storeAggregate(Dst, Src, A->Lhs.Ty, Prefix);
    }
    return Signal::Normal;
  }

  Value V;
  switch (A->RK) {
  case AssignStmt::RhsKind::Operand:
    V = evalOperand(A->A);
    break;
  case AssignStmt::RhsKind::Unary:
    V = evalUnary(A->UOp, evalOperand(A->A));
    break;
  case AssignStmt::RhsKind::Binary:
    V = evalBinary(A->BOp, evalOperand(A->A), evalOperand(A->B));
    break;
  case AssignStmt::RhsKind::Alloc: {
    unsigned Obj = allocObject(MemObject::Kind::Heap);
    Address Ad;
    Ad.Obj = Obj;
    Ad.Path.push_back(PathKey::elem(0));
    V = Value::ptr(Ad);
    break;
  }
  case AssignStmt::RhsKind::Call:
    return execCall(A->Call, &A->Lhs);
  }

  Address Dst;
  if (resolveRef(A->Lhs, Dst))
    writeCell(Dst, std::move(V));
  return Signal::Normal;
}

Signal Engine::exec(const Stmt *S) {
  if (!S)
    return Signal::Normal;
  if (++Result.Steps > Opts.MaxSteps) {
    StepLimitHit = true;
    return Signal::Halt;
  }

  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const Stmt *C : castStmt<BlockStmt>(S)->Body) {
      Signal Sig = exec(C);
      if (Sig != Signal::Normal)
        return Sig;
    }
    return Signal::Normal;
  case Stmt::Kind::Assign:
    checkStmt(S);
    return execAssign(castStmt<AssignStmt>(S));
  case Stmt::Kind::Call:
    checkStmt(S);
    return execCall(castStmt<CallStmt>(S)->Call, nullptr);
  case Stmt::Kind::Return: {
    checkStmt(S);
    const auto *R = castStmt<ReturnStmt>(S);
    if (R->Value)
      Frames.back().RetVal = evalOperand(*R->Value);
    return Signal::Return;
  }
  case Stmt::Kind::If: {
    const auto *I = castStmt<IfStmt>(S);
    if (evalOperand(I->Cond).truthy())
      return exec(I->Then);
    return exec(I->Else);
  }
  case Stmt::Kind::Loop: {
    const auto *L = castStmt<LoopStmt>(S);
    auto CondTrue = [&]() {
      if (!L->CondVar)
        return true;
      Frame &F = Frames.back();
      auto It = F.Objects.find(L->CondVar);
      if (It == F.Objects.end())
        return false;
      return readCell({It->second, {}}).truthy();
    };
    bool First = true;
    while (true) {
      if (!(L->PostTest && First)) {
        if (!L->PostTest && !CondTrue())
          break;
      }
      First = false;
      Signal Sig = exec(L->Body);
      if (Sig == Signal::Break)
        break;
      if (Sig == Signal::Return || Sig == Signal::Halt ||
          Sig == Signal::Error)
        return Sig;
      if (L->Trailer) {
        Signal TSig = exec(L->Trailer);
        if (TSig == Signal::Return || TSig == Signal::Halt ||
            TSig == Signal::Error)
          return TSig;
      }
      if (L->PostTest && !CondTrue())
        break;
      if (StepLimitHit)
        return Signal::Halt;
    }
    return Signal::Normal;
  }
  case Stmt::Kind::Switch: {
    const auto *Sw = castStmt<SwitchStmt>(S);
    long long V = evalOperand(Sw->Cond).asInt();
    size_t Start = Sw->Cases.size();
    size_t DefaultIdx = Sw->Cases.size();
    for (size_t I = 0; I < Sw->Cases.size(); ++I) {
      if (Sw->Cases[I].IsDefault)
        DefaultIdx = I;
      for (long long CV : Sw->Cases[I].Values)
        if (CV == V && Start == Sw->Cases.size())
          Start = I;
    }
    if (Start == Sw->Cases.size())
      Start = DefaultIdx;
    for (size_t I = Start; I < Sw->Cases.size(); ++I)
      for (const Stmt *C : Sw->Cases[I].Body) {
        Signal Sig = exec(C);
        if (Sig == Signal::Break)
          return Signal::Normal;
        if (Sig != Signal::Normal)
          return Sig;
      }
    return Signal::Normal;
  }
  case Stmt::Kind::Break:
    return Signal::Break;
  case Stmt::Kind::Continue:
    return Signal::Continue;
  }
  return Signal::Normal;
}

RunResult Engine::run() {
  const cf::FunctionDecl *Main = Prog.unit().findFunction("main");
  const FunctionIR *MainIR = Main ? Prog.findFunction(Main) : nullptr;
  if (!MainIR) {
    Result.Error = "no main function";
    return Result;
  }
  if (Res && Res->Locs)
    Eval = std::make_unique<LREvaluator>(*Res->Locs);

  // Globals.
  for (const cf::VarDecl *G : Prog.globals()) {
    unsigned Obj = allocObject(MemObject::Kind::Global);
    Objects[Obj].Var = G;
    std::vector<PathKey> Prefix;
    initPointerCells(Obj, G->type(), Prefix);
    GlobalObjects[G] = Obj;
  }

  // Startup frame for global initializers + main body (matches the
  // analyzer: global init runs in main's context).
  Frame MainFrame;
  MainFrame.Fn = Main;
  MainFrame.FrameId = NextFrameId++;
  auto AllocVar = [&](const cf::VarDecl *V) {
    unsigned Obj = allocObject(MemObject::Kind::Local);
    Objects[Obj].Var = V;
    Objects[Obj].FrameId = MainFrame.FrameId;
    std::vector<PathKey> Prefix;
    initPointerCells(Obj, V->type(), Prefix);
    MainFrame.Objects[V] = Obj;
  };
  for (const cf::VarDecl *P : Main->params())
    AllocVar(P);
  for (const cf::VarDecl *L : MainIR->Locals)
    if (!MainFrame.Objects.count(L))
      AllocVar(L);
  Frames.push_back(std::move(MainFrame));

  Signal Sig = exec(Prog.globalInit());
  if (Sig == Signal::Normal || Sig == Signal::Return)
    Sig = exec(MainIR->Body);

  if (Sig == Signal::Error)
    return Result;
  Result.ExitValue = Frames.back().RetVal.asInt();
  Result.Completed = !StepLimitHit;
  return Result;
}

} // namespace

RunResult mcpta::interp::runAndCheck(const Program &Prog,
                                     const pta::Analyzer::Result &Res,
                                     const InterpOptions &Opts) {
  Engine E(Prog, &Res, Opts);
  return E.run();
}

RunResult mcpta::interp::run(const Program &Prog, uint64_t MaxSteps) {
  InterpOptions Opts;
  Opts.MaxSteps = MaxSteps;
  Opts.CheckAgainstAnalysis = false;
  Engine E(Prog, nullptr, Opts);
  return E.run();
}
