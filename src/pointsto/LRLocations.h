//===- LRLocations.h - Table 1: L- and R-location sets ----------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes L-location and R-location sets for SIMPLE references and
/// operands relative to a points-to set, implementing Table 1 of the
/// paper generalized to arbitrary field/index paths.
///
/// An L-location names the stack location a reference *is*; an
/// R-location names the stack locations a reference's *value* points to.
/// Both come with a definiteness flag. Deviation from the literal table
/// (see DESIGN.md): L-locations that are summary locations (a_tail,
/// heap) are demoted to possible so they are never strong-update
/// targets.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_POINTSTO_LRLOCATIONS_H
#define MCPTA_POINTSTO_LRLOCATIONS_H

#include "pointsto/PointsToSet.h"
#include "simple/SimpleIR.h"

#include <vector>

namespace mcpta {
namespace pta {

/// Evaluates references/operands of one function body against points-to
/// sets. Stateless apart from the location table it interns into.
class LREvaluator {
public:
  explicit LREvaluator(LocationTable &Locs) : Locs(Locs) {}

  LocationTable &locations() { return Locs; }

  /// The set of abstract locations a reference designates (before the
  /// final dereference-or-address decision); the common core of Table 1.
  /// For `*p`-style references this consults S.
  std::vector<LocDef> refLocations(const simple::Reference &Ref,
                                   const PointsToSet &S);

  /// L-location set of an assignable reference. Summary locations are
  /// demoted to possible.
  std::vector<LocDef> lvalLocations(const simple::Reference &Ref,
                                    const PointsToSet &S);

  /// R-location set of a reference used as a value.
  std::vector<LocDef> rvalLocations(const simple::Reference &Ref,
                                    const PointsToSet &S);

  /// R-location set of an operand (constants, NULL, strings, function
  /// addresses, references).
  std::vector<LocDef> operandRLocations(const simple::Operand &Op,
                                        const PointsToSet &S);

  /// R-location set of `a op b` for pointer-valued results (pointer
  /// arithmetic): the pointer operand's targets, index-shifted
  /// conservatively while staying within the pointed-to object (the
  /// paper's pointer-arithmetic flag, setting (1)).
  std::vector<LocDef> binaryRLocations(const simple::Operand &A,
                                       cfront::BinaryOp Op,
                                       const simple::Operand &B,
                                       const PointsToSet &S);

  /// Shift semantics: moves a *pointed-to* cell across its siblings
  /// (p[i] forms and pointer arithmetic), staying within the object.
  void applyIndexToTarget(const Location *L, simple::IndexKind IK, Def D,
                          std::vector<LocDef> &Out);

  /// Select semantics: picks the head/tail element of an aggregate
  /// named directly (a[i] on an array lvalue).
  void selectElement(const Location *L, simple::IndexKind IK, Def D,
                     std::vector<LocDef> &Out);

  /// The base location of a plain variable.
  const Location *baseLoc(const cfront::VarDecl *V) { return Locs.varLoc(V); }

private:
  void applyAccessor(std::vector<LocDef> &Set, const simple::Accessor &A);

  LocationTable &Locs;
};

/// Deduplicates a LocDef set. A location listed with both flags keeps D
/// (the definite derivation subsumes the possible one); if the set still
/// names more than one distinct location, every entry is demoted to P —
/// a reference cannot definitely be two different locations at once.
std::vector<LocDef> normalizeLocDefs(std::vector<LocDef> Set);

} // namespace pta
} // namespace mcpta

#endif // MCPTA_POINTSTO_LRLOCATIONS_H
