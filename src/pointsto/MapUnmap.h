//===- MapUnmap.h - Interprocedural map/unmap -------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sec. 4.1: mapping points-to information from a call site into the
/// callee's name space, and unmapping the callee's output back.
///
/// Mapping: formals inherit the relationships of the corresponding
/// actuals; globals keep theirs; relationships reachable through
/// multi-level pointers are mapped recursively. Targets that are not in
/// the callee's scope (*invisible variables*) are renamed to symbolic
/// locations (1_x, 2_x, ...). An invisible variable maps to at most one
/// symbolic name (Property 3.1); one symbolic name may stand for several
/// invisible variables, in which case pairs involving it are demoted to
/// possible. Invisibles reached through definite relationships are
/// mapped before those reached through possible ones (the paper's
/// accuracy heuristic).
///
/// Unmapping: relationships of represented caller locations are replaced
/// wholesale by the translation of the callee's output; unrepresented
/// locations (inaccessible to the callee) keep their pairs. If one
/// caller location receives pairs translated from more than one distinct
/// callee location (overlapping aggregate views), its pairs are demoted
/// to possible — spurious definiteness would be unsafe (Def. 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_POINTSTO_MAPUNMAP_H
#define MCPTA_POINTSTO_MAPUNMAP_H

#include "pointsto/LRLocations.h"
#include "pointsto/MapInfo.h"
#include "pointsto/PointsToSet.h"
#include "simple/SimpleIR.h"
#include "support/Limits.h"

#include <vector>

namespace mcpta {
namespace pta {

/// Result of mapping a call site's points-to set into a callee.
struct MapResult {
  /// The callee's input points-to set (before local NULL
  /// initialization, which the analyzer applies at function entry).
  PointsToSet CalleeInput;

  /// Symbolic location id -> the ids of the invisible caller locations
  /// it represents in this context. This is the per-invocation-graph-
  /// node map information the paper deposits for later analyses.
  MapInfoTable MapInfo;

  /// Every caller location whose outgoing pairs were mapped into the
  /// callee; their relationships are killed and replaced on unmap.
  /// Sorted ascending, unique — fed straight to the killFromAll batch
  /// kernel.
  std::vector<LocationId> RepresentedSources;
};

/// Performs map/unmap against one program's location table.
class MapUnmap {
public:
  /// Hot-path traffic counters, accumulated over the lifetime of this
  /// MapUnmap (i.e. one analysis run). The analyzer publishes them as
  /// the mu.* telemetry counters.
  struct Counters {
    uint64_t MapCalls = 0;       ///< map() invocations
    uint64_t UnmapCalls = 0;     ///< unmap() invocations
    uint64_t MappedSources = 0;  ///< caller locations mapped into callees
    uint64_t InvisibleVars = 0;  ///< symbolic stand-ins created (Sec. 4.1)
    uint64_t UnmapPairs = 0;     ///< pairs translated back on unmap
  };

  /// \p Meter, when non-null, governs the abstract-location budget:
  /// map() reports the location-table size after every traversal (the
  /// traversal is where invisible-variable chains mint new symbolic
  /// entities), so the Locations cap trips at the site that grows it.
  MapUnmap(LocationTable &Locs, const simple::Program &Prog,
           support::BudgetMeter *Meter = nullptr)
      : Locs(Locs), Prog(Prog), Eval(Locs), Meter(Meter) {}

  const Counters &counters() const { return Ctrs; }

  /// Maps \p CallerS into \p Callee. \p ActualRLocs holds, per formal
  /// parameter (in order), the R-location set of the corresponding
  /// actual argument evaluated at the call site. Extra actuals (varargs)
  /// are not mapped: the callee cannot name them in our model (va_arg is
  /// not modeled), so their relationships survive the call unchanged.
  MapResult map(const PointsToSet &CallerS,
                const cfront::FunctionDecl *Callee,
                const std::vector<std::vector<LocDef>> &ActualRLocs,
                const std::vector<const simple::Operand *> &Actuals);

  /// Translates one callee-domain location back to the caller domain.
  /// Returns an empty vector for callee-private storage.
  std::vector<const Location *>
  translateBack(const Location *CalleeLoc, const cfront::FunctionDecl *Callee,
                const MapResult &M) const;

  /// Unmaps \p CalleeOut into the caller: kills represented sources'
  /// pairs in \p CallerS and unions the translated output.
  PointsToSet unmap(const PointsToSet &CallerS, const PointsToSet &CalleeOut,
                    const cfront::FunctionDecl *Callee,
                    const MapResult &M) const;

private:
  struct MapState;
  void traverse(MapState &St, const Location *CalleeLoc,
                const Location *CallerLoc);
  const Location *translateTarget(MapState &St, const Location *Target,
                                  const Location *ParentCalleeLoc);

  LocationTable &Locs;
  const simple::Program &Prog;
  LREvaluator Eval;
  support::BudgetMeter *Meter;
  /// mutable: unmap()/translateBack() are logically const queries.
  mutable Counters Ctrs;
};

} // namespace pta
} // namespace mcpta

#endif // MCPTA_POINTSTO_MAPUNMAP_H
