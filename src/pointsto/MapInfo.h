//===- MapInfo.h - Id-indexed map information -------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat, id-indexed form of the paper's Sec. 4.1 map information:
/// for each symbolic location used inside an invocation, the caller
/// locations (invisible variables) it represents in that context. One
/// table is produced per map() call and deposited on the invocation
/// graph node; the unmap translation and the Sec. 6.1 clients read it
/// back. Stored as a vector of entries sorted by symbolic LocationId —
/// binary-search lookup, linear deterministic iteration, no
/// Location*-keyed ordered maps.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_POINTSTO_MAPINFO_H
#define MCPTA_POINTSTO_MAPINFO_H

#include "pointsto/Location.h"

#include <algorithm>
#include <vector>

namespace mcpta {
namespace pta {

/// Symbolic location id -> the ids of the invisible caller locations it
/// stands for. Entries are sorted by symbolic id; representative lists
/// are sorted ascending and unique once normalize() has run (map()
/// calls it before publishing the table).
class MapInfoTable {
public:
  struct Entry {
    LocationId Sym = 0;
    std::vector<LocationId> Reps;

    bool operator==(const Entry &O) const {
      return Sym == O.Sym && Reps == O.Reps;
    }
  };

  using const_iterator = std::vector<Entry>::const_iterator;
  const_iterator begin() const { return Entries.begin(); }
  const_iterator end() const { return Entries.end(); }
  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }

  /// The representative list for \p Sym, or null when the symbolic is
  /// not bound in this context.
  const std::vector<LocationId> *find(LocationId Sym) const {
    auto It = lowerBound(Sym);
    return (It != Entries.end() && It->Sym == Sym) ? &It->Reps : nullptr;
  }

  /// The (possibly fresh) representative list for \p Sym.
  std::vector<LocationId> &getOrCreate(LocationId Sym) {
    auto It = lowerBound(Sym);
    if (It == Entries.end() || It->Sym != Sym)
      It = Entries.insert(It, Entry{Sym, {}});
    return It->Reps;
  }

  /// Sorts and dedupes every representative list (ascending ids — the
  /// deterministic order callers rely on).
  void normalize() {
    for (Entry &E : Entries) {
      std::sort(E.Reps.begin(), E.Reps.end());
      E.Reps.erase(std::unique(E.Reps.begin(), E.Reps.end()), E.Reps.end());
    }
  }

  bool operator==(const MapInfoTable &O) const { return Entries == O.Entries; }

private:
  std::vector<Entry>::iterator lowerBound(LocationId Sym) {
    return std::lower_bound(
        Entries.begin(), Entries.end(), Sym,
        [](const Entry &E, LocationId S) { return E.Sym < S; });
  }
  std::vector<Entry>::const_iterator lowerBound(LocationId Sym) const {
    return std::lower_bound(
        Entries.begin(), Entries.end(), Sym,
        [](const Entry &E, LocationId S) { return E.Sym < S; });
  }

  std::vector<Entry> Entries;
};

/// Inserts \p Id into the sorted-unique id vector \p V. Returns true if
/// it was not already present. The flat replacement for
/// std::set<const Location *> side tables.
inline bool insertSortedId(std::vector<LocationId> &V, LocationId Id) {
  auto It = std::lower_bound(V.begin(), V.end(), Id);
  if (It != V.end() && *It == Id)
    return false;
  V.insert(It, Id);
  return true;
}

} // namespace pta
} // namespace mcpta

#endif // MCPTA_POINTSTO_MAPINFO_H
