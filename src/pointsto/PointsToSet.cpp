//===- PointsToSet.cpp - Points-to triple sets -------------------------------===//

#include "pointsto/PointsToSet.h"

#include <algorithm>

using namespace mcpta;
using namespace mcpta::pta;

bool PointsToSet::insert(const Location *Src, const Location *Dst, Def D) {
  PairKey K = key(Src, Dst);
  auto [It, Inserted] = Pairs.try_emplace(K, D);
  if (Inserted)
    return true;
  // Conflicting definiteness: weaken to possible.
  if (It->second != D && It->second == Def::D) {
    It->second = Def::P;
    return true;
  }
  if (It->second != D && D == Def::P) {
    It->second = Def::P;
    return true;
  }
  return false;
}

bool PointsToSet::killFrom(const Location *Src) {
  PairKey Lo = static_cast<uint64_t>(Src->id()) << 32;
  PairKey Hi = (static_cast<uint64_t>(Src->id()) + 1) << 32;
  auto First = Pairs.lower_bound(Lo);
  auto Last = Pairs.lower_bound(Hi);
  bool Removed = First != Last;
  Pairs.erase(First, Last);
  return Removed;
}

void PointsToSet::demoteFrom(const Location *Src) {
  PairKey Lo = static_cast<uint64_t>(Src->id()) << 32;
  PairKey Hi = (static_cast<uint64_t>(Src->id()) + 1) << 32;
  for (auto It = Pairs.lower_bound(Lo), E = Pairs.lower_bound(Hi); It != E;
       ++It)
    It->second = Def::P;
}

void PointsToSet::demoteAll() {
  for (auto &[K, D] : Pairs)
    D = Def::P;
}

std::optional<Def> PointsToSet::lookup(const Location *Src,
                                       const Location *Dst) const {
  auto It = Pairs.find(key(Src, Dst));
  if (It == Pairs.end())
    return std::nullopt;
  return It->second;
}

std::vector<LocDef> PointsToSet::targetsOf(const Location *Src,
                                           const LocationTable &Locs) const {
  std::vector<LocDef> Out;
  PairKey Lo = static_cast<uint64_t>(Src->id()) << 32;
  PairKey Hi = (static_cast<uint64_t>(Src->id()) + 1) << 32;
  for (auto It = Pairs.lower_bound(Lo), E = Pairs.lower_bound(Hi); It != E;
       ++It)
    Out.push_back(
        {Locs.byId(static_cast<uint32_t>(It->first & 0xffffffffu)),
         It->second});
  return Out;
}

bool PointsToSet::hasTargets(const Location *Src) const {
  PairKey Lo = static_cast<uint64_t>(Src->id()) << 32;
  auto It = Pairs.lower_bound(Lo);
  return It != Pairs.end() && (It->first >> 32) == Src->id();
}

bool PointsToSet::mergeWith(const PointsToSet &Other) {
  // Pairs present in only one operand become possible; present in both,
  // the definiteness meet applies.
  bool Changed = false;
  for (auto &[K, D] : Pairs) {
    if (D == Def::P)
      continue;
    auto It = Other.Pairs.find(K);
    if (It == Other.Pairs.end() || It->second == Def::P) {
      D = Def::P;
      Changed = true;
    }
  }
  for (const auto &[K, D] : Other.Pairs) {
    auto [It, Inserted] = Pairs.try_emplace(K, Def::P);
    (void)D;
    (void)It;
    if (Inserted)
      Changed = true;
  }
  // Note: a pair definite in both operands was left definite by the
  // first loop and is not revisited by the second.
  return Changed;
}

bool PointsToSet::subsetOf(const PointsToSet &Other) const {
  if (Pairs.size() > Other.Pairs.size())
    return false;
  for (const auto &[K, D] : Pairs) {
    auto It = Other.Pairs.find(K);
    if (It == Other.Pairs.end())
      return false;
    // D is covered by D or P; P is only covered by P.
    if (D == Def::P && It->second == Def::D)
      return false;
  }
  return true;
}

std::vector<PointsToSet::Pair>
PointsToSet::pairs(const LocationTable &Locs) const {
  std::vector<Pair> Out;
  Out.reserve(Pairs.size());
  for (const auto &[K, D] : Pairs)
    Out.push_back({Locs.byId(static_cast<uint32_t>(K >> 32)),
                   Locs.byId(static_cast<uint32_t>(K & 0xffffffffu)), D});
  return Out;
}

std::string PointsToSet::str(const LocationTable &Locs) const {
  std::vector<std::string> Rendered;
  for (const auto &[K, D] : Pairs) {
    const Location *Src = Locs.byId(static_cast<uint32_t>(K >> 32));
    const Location *Dst = Locs.byId(static_cast<uint32_t>(K & 0xffffffffu));
    Rendered.push_back("(" + Src->str() + "," + Dst->str() + "," +
                       (D == Def::D ? "D" : "P") + ")");
  }
  std::sort(Rendered.begin(), Rendered.end());
  std::string Out;
  for (const std::string &S : Rendered) {
    if (!Out.empty())
      Out += " ";
    Out += S;
  }
  return Out;
}
