//===- PointsToSet.cpp - Points-to triple sets -------------------------------===//

#include "pointsto/PointsToSet.h"

#include <algorithm>
#include <cassert>

using namespace mcpta;
using namespace mcpta::pta;

namespace {

/// Comparator for lower_bound over the sorted entry run.
inline bool entryLess(const PointsToSet::Entry &E, PointsToSet::PairKey K) {
  return E.K < K;
}

} // namespace

const Def *PointsToSet::findKey(PairKey K) const {
  const Entry *B = entries();
  const Entry *E = B + size();
  const Entry *It = std::lower_bound(B, E, K, entryLess);
  return (It != E && It->K == K) ? &It->D : nullptr;
}

PointsToSet::Entry *PointsToSet::detachForWrite() {
  if (!Heap)
    return InlineBuf;
  if (!Heap.unique()) {
    Heap = RepPtr(new Rep(*Heap));
    stats().CowDetaches.fetch_add(1, std::memory_order_relaxed);
  }
  return Heap->E.data();
}

void PointsToSet::adopt(std::vector<Entry> V) {
  notePeak(V.size());
  if (!Heap && V.size() <= InlineCap) {
    InlineN = static_cast<uint32_t>(V.size());
    std::copy(V.begin(), V.end(), InlineBuf);
    return;
  }
  if (Heap && Heap.unique()) {
    Heap->E = std::move(V); // reuse the private block's capacity
    Heap->sync();
  } else {
    Heap = RepPtr(new Rep(std::move(V)));
  }
  InlineN = 0;
}

bool PointsToSet::insertKey(PairKey K, Def D) {
  const Entry *B = entries();
  size_t N = size();
  const Entry *It = std::lower_bound(B, B + N, K, entryLess);
  size_t Pos = static_cast<size_t>(It - B);

  if (It != B + N && It->K == K) {
    // Present: conflicting definiteness weakens to possible.
    if (It->D == D || It->D == Def::P)
      return false;
    detachForWrite()[Pos].D = Def::P;
    return true;
  }

  notePeak(N + 1);
  if (!Heap) {
    if (InlineN < InlineCap) {
      std::copy_backward(InlineBuf + Pos, InlineBuf + InlineN,
                         InlineBuf + InlineN + 1);
      InlineBuf[Pos] = {K, D};
      ++InlineN;
      return true;
    }
    // Inline tier is full: promote to a heap block.
    RepPtr R(new Rep());
    R->E.reserve(InlineN + 1);
    R->E.assign(InlineBuf, InlineBuf + InlineN);
    R->E.insert(R->E.begin() + static_cast<ptrdiff_t>(Pos), {K, D});
    R->sync();
    Heap = std::move(R);
    InlineN = 0;
    return true;
  }

  detachForWrite();
  Heap->E.insert(Heap->E.begin() + static_cast<ptrdiff_t>(Pos), {K, D});
  Heap->sync();
  return true;
}

bool PointsToSet::killFrom(const Location *Src) {
  stats().KernelCalls.fetch_add(1, std::memory_order_relaxed);
  PairKey Lo = static_cast<uint64_t>(Src->id()) << 32;
  PairKey Hi = (static_cast<uint64_t>(Src->id()) + 1) << 32;
  const Entry *B = entries();
  size_t N = size();
  size_t First = std::lower_bound(B, B + N, Lo, entryLess) - B;
  size_t Last = std::lower_bound(B, B + N, Hi, entryLess) - B;
  if (First == Last)
    return false;
  if (!Heap) {
    std::copy(InlineBuf + Last, InlineBuf + InlineN, InlineBuf + First);
    InlineN -= static_cast<uint32_t>(Last - First);
    return true;
  }
  detachForWrite();
  Heap->E.erase(Heap->E.begin() + static_cast<ptrdiff_t>(First),
                Heap->E.begin() + static_cast<ptrdiff_t>(Last));
  return true;
}

bool PointsToSet::killFromAll(const std::vector<LocationId> &SortedSrcIds) {
  stats().KernelCalls.fetch_add(1, std::memory_order_relaxed);
  if (SortedSrcIds.empty() || empty())
    return false;
  const Entry *B = entries();
  size_t N = size();

  // First pass: is anything killed at all? (Avoids detaching a shared
  // block when the answer is no — the common case once callees stop
  // touching most caller state.)
  auto srcKilled = [&](PairKey K) {
    LocationId Src = static_cast<LocationId>(K >> 32);
    return std::binary_search(SortedSrcIds.begin(), SortedSrcIds.end(), Src);
  };
  size_t I = 0;
  while (I < N && !srcKilled(B[I].K))
    ++I;
  if (I == N)
    return false;

  std::vector<Entry> Out;
  Out.reserve(N - 1);
  Out.assign(B, B + I);
  for (++I; I < N; ++I)
    if (!srcKilled(B[I].K))
      Out.push_back(B[I]);
  adopt(std::move(Out));
  return true;
}

void PointsToSet::demoteFrom(const Location *Src) {
  stats().KernelCalls.fetch_add(1, std::memory_order_relaxed);
  PairKey Lo = static_cast<uint64_t>(Src->id()) << 32;
  PairKey Hi = (static_cast<uint64_t>(Src->id()) + 1) << 32;
  const Entry *B = entries();
  size_t N = size();
  size_t First = std::lower_bound(B, B + N, Lo, entryLess) - B;
  size_t Last = std::lower_bound(B, B + N, Hi, entryLess) - B;
  // Only touch (and possibly detach) the run when a definite pair
  // actually weakens.
  bool Any = false;
  for (size_t I = First; I < Last && !Any; ++I)
    Any = B[I].D == Def::D;
  if (!Any)
    return;
  Entry *W = detachForWrite();
  for (size_t I = First; I < Last; ++I)
    W[I].D = Def::P;
}

void PointsToSet::demoteFromAll(const std::vector<LocationId> &SortedSrcIds) {
  stats().KernelCalls.fetch_add(1, std::memory_order_relaxed);
  if (SortedSrcIds.empty() || empty())
    return;
  const Entry *B = entries();
  size_t N = size();
  auto hit = [&](PairKey K) {
    LocationId Src = static_cast<LocationId>(K >> 32);
    return std::binary_search(SortedSrcIds.begin(), SortedSrcIds.end(), Src);
  };
  bool Any = false;
  for (size_t I = 0; I < N && !Any; ++I)
    Any = B[I].D == Def::D && hit(B[I].K);
  if (!Any)
    return;
  Entry *W = detachForWrite();
  for (size_t I = 0; I < N; ++I)
    if (W[I].D == Def::D && hit(W[I].K))
      W[I].D = Def::P;
}

void PointsToSet::demoteAll() {
  const Entry *B = entries();
  size_t N = size();
  bool Any = false;
  for (size_t I = 0; I < N && !Any; ++I)
    Any = B[I].D == Def::D;
  if (!Any)
    return;
  Entry *W = detachForWrite();
  for (size_t I = 0; I < N; ++I)
    W[I].D = Def::P;
}

std::optional<Def> PointsToSet::lookup(const Location *Src,
                                       const Location *Dst) const {
  const Def *D = findKey(key(Src, Dst));
  if (!D)
    return std::nullopt;
  return *D;
}

std::vector<LocDef> PointsToSet::targetsOf(const Location *Src,
                                           const LocationTable &Locs) const {
  std::vector<LocDef> Out;
  PairKey Lo = static_cast<uint64_t>(Src->id()) << 32;
  PairKey Hi = (static_cast<uint64_t>(Src->id()) + 1) << 32;
  const Entry *B = entries();
  const Entry *E = B + size();
  for (const Entry *It = std::lower_bound(B, E, Lo, entryLess);
       It != E && It->K < Hi; ++It)
    Out.push_back(
        {Locs.byId(static_cast<LocationId>(It->K & 0xffffffffu)), It->D});
  return Out;
}

bool PointsToSet::hasTargets(const Location *Src) const {
  PairKey Lo = static_cast<uint64_t>(Src->id()) << 32;
  const Entry *B = entries();
  const Entry *E = B + size();
  const Entry *It = std::lower_bound(B, E, Lo, entryLess);
  return It != E && (It->K >> 32) == Src->id();
}

bool PointsToSet::mergeWith(const PointsToSet &Other) {
  stats().KernelCalls.fetch_add(1, std::memory_order_relaxed);
  // Merging with the very same entries is the fixed-point steady state:
  // a pair present (and definite) in both operands keeps its flag, so
  // nothing changes.
  if (Heap && Heap == Other.Heap)
    return false;
  if (empty() && Other.empty())
    return false;

  const Entry *A = entries();
  const Entry *AE = A + size();
  const Entry *B = Other.entries();
  const Entry *BE = B + Other.size();

  // Linear merge of the two sorted runs: union of pairs, definite iff
  // definite in both (Figure 1 / Definition 3.3).
  std::vector<Entry> Out;
  Out.reserve(size() + Other.size());
  bool Changed = false;
  const Entry *I = A;
  const Entry *J = B;
  while (I != AE && J != BE) {
    if (I->K < J->K) {
      Out.push_back({I->K, Def::P});
      Changed |= I->D == Def::D;
      ++I;
    } else if (J->K < I->K) {
      Out.push_back({J->K, Def::P});
      Changed = true;
      ++J;
    } else {
      Def D = meet(I->D, J->D);
      Out.push_back({I->K, D});
      Changed |= D != I->D;
      ++I;
      ++J;
    }
  }
  Changed |= J != BE;
  for (; I != AE; ++I) {
    Out.push_back({I->K, Def::P});
    Changed |= I->D == Def::D;
  }
  for (; J != BE; ++J)
    Out.push_back({J->K, Def::P});

  if (!Changed)
    return false;
  adopt(std::move(Out));
  return true;
}

PointsToSet
PointsToSet::mergeAll(const std::vector<const PointsToSet *> &Sets) {
  if (Sets.empty())
    return PointsToSet();
  if (Sets.size() == 1)
    return *Sets[0]; // shares the operand's heap block
  stats().KernelCalls.fetch_add(1, std::memory_order_relaxed);

  // K-way merge over the sorted runs: each output pair is the union
  // member at the minimal outstanding key, definite iff present and
  // definite in every operand (the same law folding mergeWith pairwise
  // reaches, applied once).
  size_t K = Sets.size();
  std::vector<const Entry *> Cur(K), End(K);
  size_t Total = 0;
  for (size_t S = 0; S < K; ++S) {
    Cur[S] = Sets[S]->entries();
    End[S] = Cur[S] + Sets[S]->size();
    Total += Sets[S]->size();
  }
  std::vector<Entry> Out;
  Out.reserve(Total);
  for (;;) {
    PairKey Min = ~PairKey(0);
    bool AnyLeft = false;
    for (size_t S = 0; S < K; ++S)
      if (Cur[S] != End[S]) {
        AnyLeft = true;
        if (Cur[S]->K < Min)
          Min = Cur[S]->K;
      }
    if (!AnyLeft)
      break;
    size_t Present = 0;
    bool AllD = true;
    for (size_t S = 0; S < K; ++S)
      if (Cur[S] != End[S] && Cur[S]->K == Min) {
        ++Present;
        AllD &= Cur[S]->D == Def::D;
        ++Cur[S];
      }
    Out.push_back({Min, (Present == K && AllD) ? Def::D : Def::P});
  }

  PointsToSet R;
  R.adopt(std::move(Out));
  return R;
}

bool PointsToSet::subsetOf(const PointsToSet &Other) const {
  stats().KernelCalls.fetch_add(1, std::memory_order_relaxed);
  if (Heap && Heap == Other.Heap)
    return true;
  if (size() > Other.size())
    return false;
  // Two-pointer scan: every pair of *this must appear in Other, and a
  // possible pair may not be covered by a definite one.
  const Entry *I = entries();
  const Entry *IE = I + size();
  const Entry *J = Other.entries();
  const Entry *JE = J + Other.size();
  while (I != IE) {
    while (J != JE && J->K < I->K)
      ++J;
    if (J == JE || J->K != I->K)
      return false;
    if (I->D == Def::P && J->D == Def::D)
      return false;
    ++I;
    ++J;
  }
  return true;
}

bool PointsToSet::operator==(const PointsToSet &O) const {
  if (Heap && Heap == O.Heap)
    return true;
  size_t N = size();
  if (N != O.size())
    return false;
  const Entry *A = entries();
  const Entry *B = O.entries();
  for (size_t I = 0; I < N; ++I)
    if (!(A[I] == B[I]))
      return false;
  return true;
}

std::vector<PointsToSet::Pair>
PointsToSet::pairs(const LocationTable &Locs) const {
  std::vector<Pair> Out;
  Out.reserve(size());
  const Entry *B = entries();
  for (size_t I = 0, N = size(); I < N; ++I)
    Out.push_back({Locs.byId(static_cast<LocationId>(B[I].K >> 32)),
                   Locs.byId(static_cast<LocationId>(B[I].K & 0xffffffffu)),
                   B[I].D});
  return Out;
}

std::string PointsToSet::str(const LocationTable &Locs) const {
  std::vector<std::string> Rendered;
  const Entry *B = entries();
  for (size_t I = 0, N = size(); I < N; ++I) {
    const Location *Src = Locs.byId(static_cast<LocationId>(B[I].K >> 32));
    const Location *Dst =
        Locs.byId(static_cast<LocationId>(B[I].K & 0xffffffffu));
    Rendered.push_back("(" + Src->str() + "," + Dst->str() + "," +
                       (B[I].D == Def::D ? "D" : "P") + ")");
  }
  std::sort(Rendered.begin(), Rendered.end());
  std::string Out;
  for (const std::string &S : Rendered) {
    if (!Out.empty())
      Out += " ";
    Out += S;
  }
  return Out;
}
