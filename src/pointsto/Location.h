//===- Location.h - Abstract stack locations --------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract stack location model of Sec. 3.1. Every real stack
/// location involved in a points-to relationship is represented by
/// exactly one named abstract location (Property 3.1); a named abstract
/// location may represent one or more real locations (Property 3.2).
///
/// A Location is (root Entity, access Path). Entities are:
///   - named variables: locals, globals, parameters, simplifier temps;
///   - per-function `retval` pseudo-variables (our return-value
///     extension, see DESIGN.md);
///   - symbolic names (`1_x`, `2_x`, ...) standing for *invisible*
///     variables reachable through a parameter or global (Sec. 4.1);
///   - the single `heap` summary location;
///   - the distinguished `NULL` target;
///   - functions (targets of function pointers, Sec. 5);
///   - string literal storage.
///
/// Paths select struct fields and the head/tail halves of arrays: the
/// paper's a_head abstracts a[0] and a_tail abstracts a[1..n] (Sec. 3.2),
/// generalized here to nested aggregates (e.g. s.f[tail].g).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_POINTSTO_LOCATION_H
#define MCPTA_POINTSTO_LOCATION_H

#include "cfront/AST.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mcpta {
namespace pta {

class Location;

/// Dense location identifier: assigned by LocationTable in creation
/// order (deterministic), O(1)-resolvable back to the Location via
/// LocationTable::byId. The analysis core keys every flat side table
/// and every points-to triple by these ids — no Location*-keyed ordered
/// maps on hot paths.
using LocationId = uint32_t;

/// A root of the abstract stack: something nameable that storage hangs
/// off.
class Entity {
public:
  enum class Kind {
    Variable, // local / global / param / temp (see VarDecl::storage())
    Retval,   // per-function return-value pseudo-variable
    Symbolic, // invisible-variable stand-in (1_x, 2_x, ...)
    Heap,     // the single heap summary
    Null,     // the NULL target
    Function, // a function, as a function-pointer target
    String,   // storage of one string literal
  };

  Kind kind() const { return K; }
  const std::string &name() const { return Name; }
  const cfront::Type *type() const { return Ty; }

  /// Function owning this frame entity; null for globals and
  /// program-wide entities.
  const cfront::FunctionDecl *owner() const { return Owner; }

  const cfront::VarDecl *var() const { return Var; }
  const cfront::FunctionDecl *function() const { return Fn; }

  /// For symbolic entities: the location whose dereference this entity
  /// stands for, and the indirection level (1 for *x, 2 for **x, ...).
  const Location *symbolicParent() const { return SymParent; }
  unsigned symbolicLevel() const { return SymLevel; }

  bool isHeap() const { return K == Kind::Heap; }
  bool isNull() const { return K == Kind::Null; }
  bool isFunction() const { return K == Kind::Function; }
  bool isSymbolic() const { return K == Kind::Symbolic; }

  /// True for entities whose storage is on the (abstract) stack for the
  /// purposes of the paper's stack/heap statistics.
  bool isStackStorage() const {
    return K == Kind::Variable || K == Kind::Retval || K == Kind::Symbolic ||
           K == Kind::String;
  }

private:
  friend class LocationTable;
  Entity() = default;

  Kind K = Kind::Variable;
  std::string Name;
  const cfront::Type *Ty = nullptr;
  const cfront::FunctionDecl *Owner = nullptr;
  const cfront::VarDecl *Var = nullptr;
  const cfront::FunctionDecl *Fn = nullptr;
  const Location *SymParent = nullptr;
  unsigned SymLevel = 0;
  std::string SymBase; // base spelling used to name derived symbolics
  /// Set when the k-limit folded deeper levels into this entity, making
  /// it a summary of arbitrarily many invisible locations.
  bool Collapsed = false;

public:
  bool isCollapsed() const { return Collapsed; }
};

/// One step in a location path.
struct PathElem {
  enum class Kind { Field, Head, Tail };
  Kind K = Kind::Field;
  const cfront::FieldDecl *Field = nullptr;

  static PathElem field(const cfront::FieldDecl *F) {
    return PathElem{Kind::Field, F};
  }
  static PathElem head() { return PathElem{Kind::Head, nullptr}; }
  static PathElem tail() { return PathElem{Kind::Tail, nullptr}; }

  bool operator<(const PathElem &O) const {
    if (K != O.K)
      return K < O.K;
    return Field < O.Field;
  }
  bool operator==(const PathElem &O) const {
    return K == O.K && Field == O.Field;
  }
};

/// An interned abstract stack location. Pointer identity is location
/// identity; Ids are dense and deterministic (assigned in creation
/// order, which is itself deterministic).
class Location {
public:
  uint32_t id() const { return Id; }
  const Entity *root() const { return Root; }
  const std::vector<PathElem> &path() const { return Path; }
  const cfront::Type *type() const { return Ty; }

  /// A summary location abstracts more than one real stack location, so
  /// it can never be strongly updated and pairs to it are never definite
  /// when it matters (a_tail, heap).
  bool isSummary() const;

  bool isHeap() const { return Root->isHeap(); }
  bool isNull() const { return Root->isNull(); }
  bool isFunction() const { return Root->isFunction(); }

  /// Display name, e.g. "x", "s.next", "a[0]", "a[1..]", "2_x".
  std::string str() const;

private:
  friend class LocationTable;
  Location() = default;

  uint32_t Id = 0;
  const Entity *Root = nullptr;
  std::vector<PathElem> Path;
  const cfront::Type *Ty = nullptr;
};

/// Creates and interns entities and locations for a whole program run.
class LocationTable {
public:
  LocationTable() = default;
  LocationTable(const LocationTable &) = delete;
  LocationTable &operator=(const LocationTable &) = delete;

  //===--------------------------------------------------------------------===//
  // Entities
  //===--------------------------------------------------------------------===//
  const Entity *variable(const cfront::VarDecl *V);
  const Entity *retval(const cfront::FunctionDecl *F);
  const Entity *function(const cfront::FunctionDecl *F);
  const Entity *stringLit(unsigned Id, const cfront::Type *Ty);
  const Entity *heapEntity();
  const Entity *nullEntity();

  /// The symbolic entity standing for invisible variables reachable by
  /// dereferencing \p Parent inside \p Frame. Cached per (frame, parent).
  /// Symbolic chains deeper than symbolicLevelLimit() fold into the last
  /// entity (k-limiting), which is then a summary.
  const Entity *symbolic(const cfront::FunctionDecl *Frame,
                         const Location *Parent);

  unsigned symbolicLevelLimit() const { return SymbolicLevelLimit; }
  void setSymbolicLevelLimit(unsigned K) { SymbolicLevelLimit = K; }

  //===--------------------------------------------------------------------===//
  // Locations
  //===--------------------------------------------------------------------===//
  const Location *get(const Entity *Root, std::vector<PathElem> Path = {});
  const Location *heap() { return get(heapEntity()); }
  const Location *null() { return get(nullEntity()); }
  const Location *varLoc(const cfront::VarDecl *V) { return get(variable(V)); }
  const Location *fnLoc(const cfront::FunctionDecl *F) {
    return get(function(F));
  }
  const Location *byId(uint32_t Id) const { return LocationsById[Id]; }
  uint32_t numLocations() const {
    return static_cast<uint32_t>(LocationsById.size());
  }

  /// Visits every entity created so far (creation order). Used by the
  /// Table 2 statistics to size per-function abstract stacks.
  template <typename Fn> void forEachEntity(Fn F) const {
    for (const auto &E : Entities)
      F(E.get());
  }

  /// Appends a field selection (heap and NULL absorb paths).
  const Location *withField(const Location *L, const cfront::FieldDecl *F);
  /// Appends an array head/tail element.
  const Location *withElem(const Location *L, bool Head);
  /// Replaces a trailing Head with Tail (positive pointer arithmetic from
  /// the head of an array stays inside the same array).
  const Location *headToTail(const Location *L);

  /// All pointer-bearing sub-locations of L: L itself if its type is a
  /// pointer, plus recursively through struct fields and array elements.
  /// Used by map/unmap traversal and local initialization.
  void pointerSubLocations(const Location *L,
                           std::vector<const Location *> &Out);

private:
  Entity *makeEntity();

  std::vector<std::unique_ptr<Entity>> Entities;
  std::vector<std::unique_ptr<Location>> Locations;
  std::vector<const Location *> LocationsById;

  std::map<const cfront::VarDecl *, const Entity *> VarEntities;
  std::map<const cfront::FunctionDecl *, const Entity *> RetvalEntities;
  std::map<const cfront::FunctionDecl *, const Entity *> FnEntities;
  std::map<unsigned, const Entity *> StringEntities;
  const Entity *Heap = nullptr;
  const Entity *Null = nullptr;
  unsigned SymbolicLevelLimit = 5;
  std::map<std::pair<const cfront::FunctionDecl *, const Location *>,
           const Entity *>
      Symbolics;
  std::map<std::pair<const Entity *, std::vector<PathElem>>, const Location *>
      LocationMap;
};

} // namespace pta
} // namespace mcpta

#endif // MCPTA_POINTSTO_LOCATION_H
