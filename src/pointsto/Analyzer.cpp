//===- Analyzer.cpp - Context-sensitive points-to analysis -------------------===//
//
// The interprocedural driver: Figures 3/4 (map, memoized evaluate,
// unmap; recursion via pending-list fixed points) and Figure 5
// (function-pointer invocation-graph growth). The intraprocedural
// compositional rules live in the extracted body-transfer kernel
// (BodyKernel.cpp); the parallel engine's scheduler and StmtIn folder
// live in Scheduler.cpp (see docs/PARALLEL.md).
//
//===----------------------------------------------------------------------===//

#include "pointsto/Analyzer.h"

#include "pointsto/BodyKernel.h"
#include "pointsto/Scheduler.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace mcpta;
using namespace mcpta::pta;
using namespace mcpta::simple;
namespace cf = mcpta::cfront;

namespace {

/// Per-function summary used by the context-insensitive baseline.
struct FnSummary {
  OptSet StoredInput;
  OptSet StoredOutput;
  bool InProgress = false;
  bool GrewWhileInProgress = false;
  unsigned MemoEpoch = 0;
  bool Valid = false;
};

class AnalyzerImpl : public BodyKernel::Env {
public:
  AnalyzerImpl(const Program &Prog, const Analyzer::Options &Opts,
               Analyzer::Result &Res)
      : Prog(Prog), Opts(Opts), Res(Res), Locs(*Res.Locs), Eval(Locs),
        MeterStorage(Opts.Limits.any()
                         ? std::make_unique<support::BudgetMeter>(Opts.Limits)
                         : nullptr),
        Meter(MeterStorage.get()), MU(Locs, Prog, Meter),
        Telem(Opts.Telem && Opts.Telem->enabled() ? Opts.Telem : nullptr),
        HStmtIn(Telem ? &Telem->histogram("pta.stmt_in_size") : nullptr),
        HLoopIters(Telem ? &Telem->histogram("pta.loop_fixpoint_iters")
                         : nullptr),
        Kernel(Opts, Locs, Eval, Meter, *this, C, HLoopIters) {
    Locs.setSymbolicLevelLimit(Opts.SymbolicLevelLimit);
    // pta.set.* counters are process-wide; publishTelemetry() reports
    // this run's deltas. The peaks are per-run high-water marks (and,
    // under in-process batch parallelism, per-process approximations —
    // see docs/PARALLEL.md).
    PointsToSet::stats().PeakPairs.store(0, std::memory_order_relaxed);
    PointsToSet::stats().HeapBytesPeak.store(
        PointsToSet::stats().HeapBytes.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    SetStatsBegin = PointsToSet::stats().snapshot();

    // Parallel engine wiring: an external pool (batch/serve provide a
    // shared one) or a private pool for this run. The analysis itself
    // stays on the calling thread; the pool carries the StmtIn folding
    // (docs/PARALLEL.md). An inline pool means the classic sequential
    // engine, untouched.
    Pool = Opts.Pool;
    if (!Pool && Opts.AnalysisThreads > 1) {
      PoolStorage = std::make_unique<support::ThreadPool>(Opts.AnalysisThreads);
      Pool = PoolStorage.get();
    }
    PoolStatsBegin = Pool ? Pool->stats() : support::ThreadPool::Stats();
  }

  void run();

  /// Publishes the unified counters: fills Result's legacy fields and,
  /// when telemetry is attached, the pta.* / mu.* / ig.* counters.
  void publishTelemetry();

private:
  //===--------------------------------------------------------------------===//
  // BodyKernel::Env (the intraprocedural kernel's seam back into the
  // interprocedural driver)
  //===--------------------------------------------------------------------===//
  OptSet processCall(const CallInfo &CI, const Reference *LhsRef, OptSet In,
                     IGNode *Ign) override;
  void recordStmtIn(const Stmt *S, const OptSet &In) override;
  void warnOnce(const cf::FunctionDecl *Owner, const std::string &Key,
                const std::string &Msg) override;
  void recordDegradation(support::LimitKind K, const std::string &Context,
                         const std::string &Action) override;

  //===--------------------------------------------------------------------===//
  // Interprocedural rules (Figures 4 & 5)
  //===--------------------------------------------------------------------===//
  OptSet processCallTarget(const cf::FunctionDecl *Callee,
                           const CallInfo &CI, const Reference *LhsRef,
                           const PointsToSet &S, IGNode *Ign);
  /// Figure 4: evaluate one invocation-graph node on a callee-domain
  /// input; returns the callee-domain output (bottom while a recursion
  /// approximation is pending).
  OptSet evaluateCall(IGNode *Node, const PointsToSet &FuncInput);
  OptSet evaluateCallCI(IGNode *Node, const PointsToSet &FuncInput);
  OptSet runRecursionFixpoint(IGNode *Node, const PointsToSet &FuncInput);
  OptSet processBody(IGNode *Node, const PointsToSet &FuncInput);

  /// Conservative models for library functions without bodies.
  OptSet applyExtern(const cf::FunctionDecl *Callee, const CallInfo &CI,
                     const Reference *LhsRef, PointsToSet S, IGNode *Ign);

  /// Figure 5: makeDefinitePointsTo — inside the target's analysis the
  /// function pointer definitely points to it.
  PointsToSet makeDefinite(const PointsToSet &S, const Location *FptrLoc,
                           const cf::FunctionDecl *Fn);

  std::vector<const cf::FunctionDecl *>
  indirectTargets(const CallInfo &CI, const PointsToSet &S);

  /// Memo-dependency bookkeeping: a node's stored output is valid while
  /// every proper-ancestor Recursive summary it could have consumed is
  /// unchanged.
  static bool memoDepsValid(const IGNode *Node);
  static void recordMemoDeps(IGNode *Node);

  //===--------------------------------------------------------------------===//
  // Resource governance (docs/ROBUSTNESS.md)
  //===--------------------------------------------------------------------===//

  /// Per-statement budget tick: visit counting, amortized deadline and
  /// location-cap checks. One null-pointer branch when ungoverned.
  void budgetTick() {
    if (!Meter)
      return;
    Meter->tick();
    if ((Meter->stmtVisits() & 255) == 0)
      Meter->noteLocations(Locs.numLocations());
    if (Meter->tripped())
      noteTrips();
  }

  /// Latches degraded mode and records one Degradation entry per newly
  /// tripped global budget (deadline, statement visits, locations,
  /// invocation-graph nodes). Per-region cuts (recursion pass cap,
  /// deadline cut of an in-flight fixed point) are recorded at their
  /// sites instead.
  void noteTrips();

  /// First tripped global budget, for attributing secondary fallbacks.
  support::LimitKind primaryTrippedKind() const;

  const Program &Prog;
  const Analyzer::Options &Opts;
  Analyzer::Result &Res;
  LocationTable &Locs;
  LREvaluator Eval;
  /// Owns the budget meter iff any limit is set; components share the
  /// raw pointer and pay one branch when it is null.
  std::unique_ptr<support::BudgetMeter> MeterStorage;
  support::BudgetMeter *Meter;
  MapUnmap MU;

  /// Sticky: set when a global budget trips. From then on every call is
  /// evaluated through the context-insensitive merged summaries and the
  /// invocation graph stops materializing new contexts.
  bool DegradedMode = false;
  bool TripRecorded[support::NumLimitKinds] = {};
  std::set<std::string> DegradationKeys;

  /// Global memoization epoch; bumped whenever a recursion summary
  /// grows, invalidating dependent memo entries.
  unsigned Epoch = 1;
  std::map<const cf::FunctionDecl *, FnSummary> Summaries; // CI baseline
  /// CI baseline: map information merged over every call site of a
  /// function — the context-sensitive per-call map info is precisely
  /// what the ablation removes.
  std::map<const cf::FunctionDecl *, MapResult> MergedMapInfo;
  std::set<std::string> WarnedKeys;

  /// Instrumentation: null when telemetry is off, so every site costs
  /// one branch. The histogram handles are resolved once here to keep
  /// name lookups out of the per-statement path.
  support::Telemetry *Telem;
  support::Histogram *HStmtIn;
  support::Histogram *HLoopIters;
  HotCounters C;
  /// Process-wide PointsToSet traffic at run start (pta.set.* deltas).
  PointsToSet::StatsSnapshot SetStatsBegin;

  /// The extracted intraprocedural kernel (Figure 1 rules).
  BodyKernel Kernel;

  /// Parallel engine (docs/PARALLEL.md): the pool carrying offloaded
  /// work, the StmtIn folder feeding it, and the pta.par.* counters.
  /// All null/inert for the sequential engine.
  std::unique_ptr<support::ThreadPool> PoolStorage; ///< owned iff private
  support::ThreadPool *Pool = nullptr;
  support::ThreadPool::Stats PoolStatsBegin;
  std::unique_ptr<StmtInFolder> Folder;
  ParCounters Par;
};

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

void AnalyzerImpl::warnOnce(const cf::FunctionDecl *Owner,
                            const std::string &Key, const std::string &Msg) {
  // Per-function attribution is recorded before the key dedup: a
  // message two bodies both trigger must appear under both owners.
  Res.WarningsByFn.add(Owner, Msg);
  if (WarnedKeys.insert(Key).second)
    Res.Warnings.push_back(Msg);
}

/// Warning-attribution owner for a node being evaluated.
static const cf::FunctionDecl *ownerName(const IGNode *Ign) {
  return Ign ? Ign->function() : nullptr;
}

static const char *trippedContext(support::LimitKind K) {
  switch (K) {
  case support::LimitKind::Deadline:
    return "wall-clock deadline reached";
  case support::LimitKind::StmtVisits:
    return "statement-visit budget exhausted";
  case support::LimitKind::Locations:
    return "abstract-location cap reached";
  case support::LimitKind::IGNodes:
    return "invocation-graph node cap reached";
  case support::LimitKind::RecPasses:
    return "recursion-generalization pass cap reached";
  }
  return "budget exhausted";
}

static const char *trippedAction(support::LimitKind K) {
  switch (K) {
  case support::LimitKind::Locations:
    return "new invisible-variable chains collapse at symbolic level 1; "
           "remaining calls use context-insensitive merged summaries";
  case support::LimitKind::IGNodes:
    return "new contexts share one canonical invocation node per function; "
           "remaining calls use context-insensitive merged summaries";
  default:
    return "remaining calls use context-insensitive merged summaries";
  }
}

support::LimitKind AnalyzerImpl::primaryTrippedKind() const {
  if (Meter)
    for (unsigned I = 0; I < support::NumLimitKinds; ++I)
      if (Meter->tripped(static_cast<support::LimitKind>(I)))
        return static_cast<support::LimitKind>(I);
  return support::LimitKind::Deadline;
}

void AnalyzerImpl::recordDegradation(support::LimitKind K,
                                     const std::string &Context,
                                     const std::string &Action) {
  ++C.DegradedByKind[static_cast<unsigned>(K)];
  std::string Key = std::string(support::limitKindName(K)) + "|" + Context;
  if (!DegradationKeys.insert(Key).second)
    return;
  Res.Degradations.push_back({K, Context, Action});
  // Warnings dedupe one level coarser than the structured record: per
  // (kind, context category), so a budget trip that degrades dozens of
  // per-function fixed points surfaces once, not once per function.
  // Full detail stays in Res.Degradations and pta.degraded.<kind>.
  warnOnce(nullptr, "degraded-" + std::string(support::limitKindName(K)) + "|" +
               support::degradationCategory(Context),
           "analysis degraded [" + std::string(support::limitKindName(K)) +
               "] " + Context + ": " + Action);
}

void AnalyzerImpl::noteTrips() {
  if (!Meter || !Meter->tripped())
    return;
  DegradedMode = true;
  for (unsigned I = 0; I < support::NumLimitKinds; ++I) {
    auto K = static_cast<support::LimitKind>(I);
    if (!Meter->tripped(K) || TripRecorded[I])
      continue;
    TripRecorded[I] = true;
    recordDegradation(K, trippedContext(K), trippedAction(K));
    // Location-table blowup: make every *new* invisible-variable chain
    // collapse immediately into the existing k-limit summary machinery
    // (top-saturated symbolic names), stopping further growth.
    if (K == support::LimitKind::Locations)
      Locs.setSymbolicLevelLimit(1);
  }
}

void AnalyzerImpl::recordStmtIn(const Stmt *S, const OptSet &In) {
  budgetTick();
  if (HStmtIn && In)
    HStmtIn->record(In->size());
  if (!Opts.RecordStmtSets)
    return;
  if (Res.StmtIn.size() <= S->id())
    Res.StmtIn.resize(Prog.numStmts());
  // Parallel engine: the fold is the dominant per-visit cost; route it
  // to the pool. Order per slot is preserved by the folder's exclusive
  // shard drains (and Merge is a commutative join besides), so the
  // accumulated sets are identical to the sequential engine's.
  if (Folder && In) {
    Folder->record(S->id(), *In);
    return;
  }
  mergeInto(Res.StmtIn[S->id()], In);
}

//===----------------------------------------------------------------------===//
// Interprocedural analysis
//===----------------------------------------------------------------------===//

PointsToSet AnalyzerImpl::makeDefinite(const PointsToSet &S,
                                       const Location *FptrLoc,
                                       const cf::FunctionDecl *Fn) {
  PointsToSet Out = S;
  Out.killFrom(FptrLoc);
  Out.insert(FptrLoc, Locs.fnLoc(Fn), Def::D);
  return Out;
}

std::vector<const cf::FunctionDecl *>
AnalyzerImpl::indirectTargets(const CallInfo &CI, const PointsToSet &S) {
  std::vector<const cf::FunctionDecl *> Out;
  switch (Opts.FnPtr) {
  case FnPtrMode::Precise: {
    const Location *Fptr = Locs.varLoc(CI.FnPtr.Base);
    for (const LocDef &T : S.targetsOf(Fptr, Locs))
      if (T.Loc->isFunction())
        Out.push_back(T.Loc->root()->function());
    break;
  }
  case FnPtrMode::AllFunctions:
    for (const cf::FunctionDecl *F : Prog.unit().functions())
      if (F->isDefined())
        Out.push_back(F);
    break;
  case FnPtrMode::AddressTaken:
    for (const cf::FunctionDecl *F : Prog.unit().functions())
      if (F->isDefined() && F->isAddressTaken())
        Out.push_back(F);
    break;
  }
  return Out;
}

OptSet AnalyzerImpl::processCall(const CallInfo &CI, const Reference *LhsRef,
                                 OptSet In, IGNode *Ign) {
  if (!In)
    return {};
  PointsToSet S = std::move(*In);

  if (CI.NoReturn)
    return {}; // exit()/abort(): no normal continuation

  if (!CI.isIndirect())
    return processCallTarget(CI.Callee, CI, LhsRef, S, Ign);

  // Figure 5: resolve through the function pointer's points-to set.
  std::vector<const cf::FunctionDecl *> Targets = indirectTargets(CI, S);
  ++C.IndirectCallsResolved;
  C.IndirectTargetsTotal += Targets.size();
  if (Targets.empty() && DegradedMode && Opts.FnPtr == FnPtrMode::Precise) {
    // Degraded precision (a cut-short fixed point) may have lost the
    // function pointer's bindings. Fall back to the Sec. 5 address-taken
    // baseline rather than risk missing a callee.
    for (const cf::FunctionDecl *F : Prog.unit().functions())
      if (F->isDefined() && F->isAddressTaken())
        Targets.push_back(F);
    if (!Targets.empty())
      recordDegradation(primaryTrippedKind(),
                        "indirect call through '" + CI.FnPtr.str() + "'",
                        "unresolved under degraded precision; bound to "
                        "every address-taken function");
  }
  if (Targets.empty()) {
    warnOnce(ownerName(Ign),
             "fptr-unresolved@" + std::to_string(CI.CallSiteId),
             "indirect call through '" + CI.FnPtr.str() +
                 "' has no resolvable targets; treated as a no-op");
    return OptSet(std::move(S));
  }

  const Location *FptrLoc = Locs.varLoc(CI.FnPtr.Base);
  OptSet CallOutput; // starts as Bottom, merged over invocable functions
  for (const cf::FunctionDecl *Fn : Targets) {
    PointsToSet TargetIn =
        Opts.FnPtr == FnPtrMode::Precise ? makeDefinite(S, FptrLoc, Fn) : S;
    OptSet TargetOut = processCallTarget(Fn, CI, LhsRef, TargetIn, Ign);
    mergeInto(CallOutput, TargetOut);
  }
  return CallOutput;
}

OptSet AnalyzerImpl::processCallTarget(const cf::FunctionDecl *Callee,
                                       const CallInfo &CI,
                                       const Reference *LhsRef,
                                       const PointsToSet &S, IGNode *Ign) {
  const FunctionIR *FIR = Prog.findFunction(Callee);
  if (!FIR)
    return applyExtern(Callee, CI, LhsRef, S, Ign);

  // Evaluate actual R-locations and map into the callee.
  std::vector<std::vector<LocDef>> ActualRLocs;
  std::vector<const Operand *> Actuals;
  for (const Operand &A : CI.Args) {
    ActualRLocs.push_back(Eval.operandRLocations(A, S));
    Actuals.push_back(&A);
  }
  MapResult MR = MU.map(S, Callee, ActualRLocs, Actuals);

  IGNode *Child = Res.IG->getOrCreateChild(Ign, CI.CallSiteId, Callee);
  Child->MapInfo = MR.MapInfo; // context-sensitive deposit (Sec. 4.1)

  // A governed run polls here: map() may have crossed the location cap
  // and getOrCreateChild() the node cap, so the very call that crosses
  // a budget is already evaluated through the fallback.
  if (Meter && Meter->tripped())
    noteTrips();
  const bool UseCI = !Opts.ContextSensitive || DegradedMode;

  // Context-insensitive evaluation (the ablation baseline, and degraded
  // mode) also merges the map information across call sites: symbolic
  // names then stand for the union of every context's invisible
  // variables, which is what makes unmapping a merged summary sound.
  const MapResult *UnmapMR = &MR;
  if (UseCI) {
    MapResult &Merged = MergedMapInfo[Callee];
    for (const MapInfoTable::Entry &E : MR.MapInfo) {
      auto &Into = Merged.MapInfo.getOrCreate(E.Sym);
      for (LocationId R : E.Reps)
        insertSortedId(Into, R);
    }
    for (LocationId Src : MR.RepresentedSources)
      insertSortedId(Merged.RepresentedSources, Src);
    UnmapMR = &Merged;
  }

  OptSet CalleeOut = UseCI ? evaluateCallCI(Child, MR.CalleeInput)
                           : evaluateCall(Child, MR.CalleeInput);
  if (!CalleeOut)
    return {};

  PointsToSet OutCaller = MU.unmap(S, *CalleeOut, Callee, *UnmapMR);

  // Return value: translate retval's relationships back and assign.
  if (LhsRef && Callee->returnType()->isPointerBearing()) {
    const Location *Ret = Locs.get(Locs.retval(Callee));
    if (Callee->returnType()->isRecord()) {
      // retval is callee storage: read each pointer component's targets
      // from the callee output and translate them back individually.
      std::vector<LocDef> LhsStorage = Eval.lvalLocations(*LhsRef, OutCaller);
      std::vector<std::vector<PathElem>> Suffixes;
      std::vector<PathElem> Prefix;
      BodyKernel::pointerSuffixPaths(Callee->returnType(), Prefix, Suffixes);
      for (const std::vector<PathElem> &P : Suffixes) {
        const Location *RetP = BodyKernel::applyPath(Locs, Ret, P);
        std::vector<LocDef> Rlocs;
        for (const LocDef &T : CalleeOut->targetsOf(RetP, Locs))
          for (const Location *CT :
               MU.translateBack(T.Loc, Callee, *UnmapMR))
            Rlocs.push_back({CT, T.D});
        std::vector<LocDef> Llocs;
        for (const LocDef &L : LhsStorage) {
          const Location *LL = BodyKernel::applyPath(Locs, L.Loc, P);
          Def D = (L.D == Def::D && !LL->isSummary()) ? Def::D : Def::P;
          Llocs.push_back({LL, D});
        }
        Kernel.applyAssignRule(OutCaller, normalizeLocDefs(std::move(Llocs)),
                               normalizeLocDefs(std::move(Rlocs)));
      }
    } else {
      std::vector<LocDef> Rlocs;
      for (const LocDef &T : CalleeOut->targetsOf(Ret, Locs)) {
        std::vector<const Location *> Back =
            MU.translateBack(T.Loc, Callee, *UnmapMR);
        Def D = Back.size() == 1 ? T.D : Def::P;
        for (const Location *CT : Back)
          Rlocs.push_back({CT, D});
      }
      std::vector<LocDef> Llocs = Eval.lvalLocations(*LhsRef, OutCaller);
      Kernel.applyAssignRule(OutCaller, Llocs,
                             normalizeLocDefs(std::move(Rlocs)));
    }
  }
  return OptSet(std::move(OutCaller));
}

OptSet AnalyzerImpl::evaluateCall(IGNode *Node,
                                  const PointsToSet &FuncInput) {
  switch (Node->kind()) {
  case IGNode::Kind::Approximate: {
    IGNode *Rec = Node->recEdge();
    if (!Rec) {
      // A malformed approximate node has no recursion summary to
      // consult. Recover: identity transfer with definiteness dropped
      // (never claims a kill it cannot justify).
      warnOnce(ownerName(Node->parent()), "approx-no-backedge",
               "internal: approximate invocation node without back edge; "
               "call treated as an identity transfer");
      PointsToSet Out = FuncInput;
      Out.demoteAll();
      return OptSet(std::move(Out));
    }
    if (Rec->StoredInput && FuncInput.subsetOf(*Rec->StoredInput))
      return Rec->StoredOutput; // use the stored summary (may be Bottom)
    Rec->PendingList.push_back(FuncInput);
    ++C.PendingEnqueues;
    return {};
  }
  case IGNode::Kind::Recursive:
    if (Node->FixpointDone && Node->StoredInput &&
        FuncInput == *Node->StoredInput && memoDepsValid(Node)) {
      ++C.MemoHits;
      return Node->StoredOutput;
    }
    ++C.MemoMisses;
    ++Node->EvalCount;
    return runRecursionFixpoint(Node, FuncInput);
  case IGNode::Kind::Ordinary: {
    if (Node->StoredInput && FuncInput == *Node->StoredInput &&
        memoDepsValid(Node)) {
      ++C.MemoHits;
      return Node->StoredOutput;
    }
    ++C.MemoMisses;
    // Incremental re-analysis: at the node's first would-be body
    // evaluation, a successful seed graft restores the whole subtree's
    // memo state from the baseline snapshot and stands in for the
    // evaluation (EvalCount stays 0, mirroring a memo hit).
    if (Opts.Seeder && Node->EvalCount == 0 &&
        Opts.Seeder->trySeed(Node, FuncInput))
      return Node->StoredOutput;
    ++Node->EvalCount;
    OptSet Out = processBody(Node, FuncInput);
    // A function-pointer call inside the body may have discovered that
    // this node is actually recursive (Sec. 5's example): rerun as a
    // proper fixed point.
    if (Node->isRecursive())
      return runRecursionFixpoint(Node, FuncInput);
    Node->StoredInput = FuncInput;
    Node->StoredOutput = Out;
    recordMemoDeps(Node);
    return Out;
  }
  }
  return {};
}

bool AnalyzerImpl::memoDepsValid(const IGNode *Node) {
  for (const auto &[Rec, Version] : Node->MemoDeps)
    if (Rec->SummaryVersion != Version)
      return false;
  return true;
}

void AnalyzerImpl::recordMemoDeps(IGNode *Node) {
  Node->MemoDeps.clear();
  for (const IGNode *N = Node->parent(); N; N = N->parent())
    if (N->isRecursive())
      Node->MemoDeps.push_back({N, N->SummaryVersion});
}

OptSet AnalyzerImpl::runRecursionFixpoint(IGNode *Node,
                                          const PointsToSet &FuncInput) {
  Node->StoredInput = FuncInput;
  Node->StoredOutput.reset();
  Node->PendingList.clear();
  Node->FixpointDone = false;
  ++Node->SummaryVersion;

  unsigned Passes = 0;
  while (true) {
    OptSet FuncOutput = processBody(Node, *Node->StoredInput);
    ++Passes;
    // Governed cut: too many generalization passes of this one fixed
    // point, or a run well past its hard deadline. The partial summary
    // is kept but fully demoted: every pair the truncated fixed point
    // did produce survives as possible, and none of its kills is
    // trusted as definite.
    const bool CutOff =
        Meter && (Meter->recPassesExceeded(Passes) || Meter->hardDeadline());
    if (!Node->PendingList.empty()) {
      // Unresolved inputs: generalize the input estimate and restart —
      // but only when it actually grows. One k-way merge over the
      // stored input and every pending input at once.
      std::vector<const PointsToSet *> Ops;
      Ops.reserve(Node->PendingList.size() + 1);
      Ops.push_back(&*Node->StoredInput);
      for (const PointsToSet &P : Node->PendingList)
        Ops.push_back(&P);
      PointsToSet Merged = PointsToSet::mergeAll(Ops);
      bool Grew = Merged != *Node->StoredInput;
      if (Grew)
        *Node->StoredInput = std::move(Merged);
      Node->PendingList.clear();
      if (Grew && !CutOff) {
        Node->StoredOutput.reset();
        ++Node->SummaryVersion; // descendant memos are now stale
        ++C.FixpointRestarts;   // pending-list wakeup reruns the body
        continue;
      }
    }
    if (CutOff) {
      mergeInto(Node->StoredOutput, FuncOutput);
      if (Node->StoredOutput)
        Node->StoredOutput->demoteAll();
      ++Node->SummaryVersion;
      const std::string Fn = Node->function()->name();
      if (Meter->recPassesExceeded(Passes))
        recordDegradation(support::LimitKind::RecPasses,
                          "recursion fixed point of '" + Fn + "'",
                          "summary cut off after " + std::to_string(Passes) +
                              " generalization pass(es); definiteness "
                              "dropped");
      else
        recordDegradation(support::LimitKind::Deadline,
                          "recursion fixed point of '" + Fn + "'",
                          "cut short past the hard deadline; definiteness "
                          "dropped");
      break;
    }
    if (subsetOfOpt(FuncOutput, Node->StoredOutput))
      break; // output converged
    mergeInto(Node->StoredOutput, FuncOutput);
    ++Node->SummaryVersion;
  }

  // Reset the stored input to this call's input for future memoization
  // (Figure 4's final step).
  Node->StoredInput = FuncInput;
  Node->FixpointDone = true;
  recordMemoDeps(Node);
  return Node->StoredOutput;
}

OptSet AnalyzerImpl::evaluateCallCI(IGNode *Node,
                                    const PointsToSet &FuncInput) {
  FnSummary &Sum = Summaries[Node->function()];
  if (Sum.Valid && Sum.MemoEpoch == Epoch &&
      subsetOfOpt(OptSet(FuncInput), Sum.StoredInput))
    return Sum.StoredOutput;

  if (Sum.InProgress) {
    // Recursive (or re-entrant) use of the summary: consume the current
    // estimate; the outer evaluation iterates only if the input
    // actually grew (otherwise the loop would never terminate).
    if (!subsetOfOpt(OptSet(FuncInput), Sum.StoredInput)) {
      mergeInto(Sum.StoredInput, OptSet(FuncInput));
      Sum.GrewWhileInProgress = true;
    }
    return Sum.StoredOutput;
  }
  mergeInto(Sum.StoredInput, OptSet(FuncInput));

  unsigned Passes = 0;
  while (true) {
    Sum.GrewWhileInProgress = false;
    Sum.InProgress = true;
    OptSet Out = processBody(Node, *Sum.StoredInput);
    Sum.InProgress = false;
    ++Passes;
    // Governed cut for the merged-summary iteration itself; see
    // runRecursionFixpoint for the demotion rationale.
    const bool CutOff =
        Meter && (Meter->recPassesExceeded(Passes) || Meter->hardDeadline());
    if (Sum.GrewWhileInProgress && !CutOff) {
      Sum.StoredOutput.reset();
      ++Epoch;
      continue;
    }
    if (CutOff &&
        (Sum.GrewWhileInProgress || !subsetOfOpt(Out, Sum.StoredOutput))) {
      mergeInto(Sum.StoredOutput, Out);
      if (Sum.StoredOutput)
        Sum.StoredOutput->demoteAll();
      ++Epoch;
      const std::string Fn = Node->function()->name();
      if (Meter->recPassesExceeded(Passes))
        recordDegradation(support::LimitKind::RecPasses,
                          "merged summary of '" + Fn + "'",
                          "summary cut off after " + std::to_string(Passes) +
                              " pass(es); definiteness dropped");
      else
        recordDegradation(support::LimitKind::Deadline,
                          "merged summary of '" + Fn + "'",
                          "cut short past the hard deadline; definiteness "
                          "dropped");
      break;
    }
    if (subsetOfOpt(Out, Sum.StoredOutput))
      break;
    mergeInto(Sum.StoredOutput, Out);
    ++Epoch;
  }
  Sum.Valid = true;
  Sum.MemoEpoch = Epoch;
  return Sum.StoredOutput;
}

OptSet AnalyzerImpl::processBody(IGNode *Node,
                                 const PointsToSet &FuncInput) {
  const FunctionIR *FIR = Prog.findFunction(Node->function());
  if (!FIR) {
    // Callers filter extern functions before evaluating; reaching here
    // means the graph and the program disagree. Recover: treat the call
    // as an identity transfer instead of dying on malformed input.
    warnOnce(ownerName(Node->parent()),
             "body-missing-" + Node->function()->name(),
             "internal: no body for '" + Node->function()->name() +
                 "'; call treated as an identity transfer");
    return OptSet(FuncInput);
  }
  ++C.BodyAnalyses;

  // Local pointer variables are initialized to NULL (Sec. 4.1).
  PointsToSet S = FuncInput;
  for (const cf::VarDecl *V : FIR->Locals) {
    std::vector<const Location *> Subs;
    Locs.pointerSubLocations(Locs.varLoc(V), Subs);
    for (const Location *Sub : Subs)
      S.insert(Sub, Locs.null(), Sub->isSummary() ? Def::P : Def::D);
  }

  FlowState FS = Kernel.process(FIR->Body, OptSet(std::move(S)), Node);
  OptSet Out = std::move(FS.Normal);
  mergeInto(Out, FS.Ret);
  return Out;
}

//===----------------------------------------------------------------------===//
// Extern models
//===----------------------------------------------------------------------===//

OptSet AnalyzerImpl::applyExtern(const cf::FunctionDecl *Callee,
                                 const CallInfo &CI, const Reference *LhsRef,
                                 PointsToSet S, IGNode *Ign) {
  (void)Ign;
  ++C.ExternCalls;
  const std::string &Name = Callee->name();
  const ExternModel Model = externCallModel(Name);
  const bool IsReturnsArg0 = Model == ExternModel::ReturnsArg0;

  if (LhsRef && LhsRef->Ty && LhsRef->Ty->isPointerBearing()) {
    std::vector<LocDef> Rlocs;
    if (IsReturnsArg0 && !CI.Args.empty()) {
      // The result may point anywhere inside the object arg0 points to.
      for (const LocDef &T : Eval.operandRLocations(CI.Args[0], S)) {
        if (T.Loc->isNull())
          continue;
        Eval.applyIndexToTarget(T.Loc, IndexKind::Unknown, Def::P, Rlocs);
      }
    } else if (Callee->returnType()->isPointerBearing()) {
      // Unknown library function returning a pointer: assume a heap (or
      // library-internal) object.
      warnOnce(ownerName(Ign), "extern-ptr-" + Name,
               "extern function '" + Name +
                   "' returns a pointer; modeled as pointing to heap");
      Rlocs = {{Locs.heap(), Def::P}};
    }
    std::vector<LocDef> Llocs = Eval.lvalLocations(*LhsRef, S);
    Kernel.applyAssignRule(S, Llocs, normalizeLocDefs(std::move(Rlocs)));
  }

  // Known pointer-neutral library functions need no warning; anything
  // else gets a one-time note that its side effects are ignored.
  if (Model == ExternModel::Unknown)
    warnOnce(ownerName(Ign), "extern-" + Name,
             "extern function '" + Name +
                 "' has no body; its pointer side effects are ignored");

  return OptSet(std::move(S));
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

void AnalyzerImpl::run() {
  {
    support::Telemetry::Span S(Telem, "ig-build");
    Res.IG = InvocationGraph::build(Prog, Meter);
  }
  if (!Res.IG) {
    Res.Warnings.push_back("program has no defined main(); nothing to do");
    return;
  }
  // The eager invocation-graph expansion may already have crossed the
  // node cap (or the deadline): enter degraded mode before the first
  // statement is processed.
  if (Meter && Meter->tripped())
    noteTrips();
  if (Opts.Seeder)
    Opts.Seeder->begin(Prog, *Res.IG, Locs);
  support::Telemetry::Span PtaSpan(Telem, "pointsto");
  if (Opts.RecordStmtSets) {
    Res.StmtIn.resize(Prog.numStmts());
    // The folder engages only now: StmtIn must be at its final size
    // before worker threads hold references into it. A seeded
    // (incremental) run keeps the sequential fold — the seeder grafts
    // baseline StmtIn rows directly into Res.StmtIn from the analysis
    // thread, which must not race with worker-side merges.
    if (Pool && Pool->parallel() && !Opts.Seeder)
      Folder = std::make_unique<StmtInFolder>(*Pool, Res.StmtIn, Par);
  }

  // Startup state: globals' pointer components are NULL unless
  // initialized; then the lowered global initializers run.
  PointsToSet S;
  for (const cf::VarDecl *G : Prog.globals()) {
    std::vector<const Location *> Subs;
    Locs.pointerSubLocations(Locs.varLoc(G), Subs);
    for (const Location *Sub : Subs)
      S.insert(Sub, Locs.null(), Sub->isSummary() ? Def::P : Def::D);
  }

  IGNode *Root = Res.IG->root();
  FlowState InitFS =
      Kernel.process(Prog.globalInit(), OptSet(std::move(S)), Root);
  OptSet MainIn = std::move(InitFS.Normal);
  if (!MainIn)
    MainIn.emplace();

  // main's own locals are initialized inside processBody.
  const FunctionIR *MainIR = Prog.findFunction(Root->function());
  if (!MainIR) {
    Res.Warnings.push_back(
        "invocation-graph root has no analyzable body; nothing to do");
    if (Folder)
      Folder->finish();
    return;
  }
  PointsToSet S2 = std::move(*MainIn);
  for (const cf::VarDecl *V : MainIR->Locals) {
    std::vector<const Location *> Subs;
    Locs.pointerSubLocations(Locs.varLoc(V), Subs);
    for (const Location *Sub : Subs)
      S2.insert(Sub, Locs.null(), Sub->isSummary() ? Def::P : Def::D);
  }
  ++C.BodyAnalyses;
  ++Root->EvalCount; // main is processed directly, bypassing evaluateCall
  FlowState FS = Kernel.process(MainIR->Body, OptSet(std::move(S2)), Root);
  OptSet Out = std::move(FS.Normal);
  mergeInto(Out, FS.Ret);
  Res.MainOut = std::move(Out);
  Res.Analyzed = true;
  // The parallel barrier: every offloaded StmtIn fold lands before the
  // Result is read (or serialized).
  if (Folder)
    Folder->finish();
}

void AnalyzerImpl::publishTelemetry() {
  Res.BodyAnalyses = static_cast<unsigned>(C.BodyAnalyses);
  Res.LoopIterations = static_cast<unsigned>(C.LoopIterations);
  Res.MemoHits = static_cast<unsigned>(C.MemoHits);
  if (!Telem)
    return;

  Telem->add("pta.body_analyses", C.BodyAnalyses);
  Telem->add("pta.memo_hits", C.MemoHits);
  Telem->add("pta.memo_misses", C.MemoMisses);
  Telem->add("pta.loop_iterations", C.LoopIterations);
  Telem->add("pta.pending_enqueues", C.PendingEnqueues);
  Telem->add("pta.fixpoint_restarts", C.FixpointRestarts);
  Telem->add("pta.indirect_calls_resolved", C.IndirectCallsResolved);
  Telem->add("pta.indirect_targets", C.IndirectTargetsTotal);
  Telem->add("pta.extern_calls", C.ExternCalls);
  Telem->add("pta.stmt_visits", C.StmtVisits);
  Telem->add("pta.stmt_skips", C.StmtSkips);
  Telem->add("pta.loop_limit_hits", C.LoopLimitHits);
  Telem->add("pta.degradations", Res.Degradations.size());
  for (unsigned I = 0; I < support::NumLimitKinds; ++I)
    Telem->add("pta.degraded." +
                   std::string(support::limitKindName(
                       static_cast<support::LimitKind>(I))),
               C.DegradedByKind[I]);
  Telem->add("pta.warnings", Res.Warnings.size());
  if (Res.MainOut)
    Telem->add("pta.main_out_pairs", Res.MainOut->size());

  PointsToSet::StatsSnapshot SS = PointsToSet::stats().snapshot();
  Telem->add("pta.set.peak_pairs", SS.PeakPairs);
  Telem->add("pta.set.cow_shares", SS.CowShares - SetStatsBegin.CowShares);
  Telem->add("pta.set.cow_detaches",
             SS.CowDetaches - SetStatsBegin.CowDetaches);
  Telem->add("pta.set.kernel_calls",
             SS.KernelCalls - SetStatsBegin.KernelCalls);

  // The parallel engine's observability surface (docs/PARALLEL.md):
  // published only when a pool actually carried work, so sequential
  // stats exports are unchanged.
  if (Pool && Pool->parallel()) {
    support::ThreadPool::Stats PS = Pool->stats();
    Telem->add("pta.par.tasks", PS.TasksExecuted - PoolStatsBegin.TasksExecuted);
    Telem->add("pta.par.steals", PS.Steals - PoolStatsBegin.Steals);
    Telem->add("pta.par.fold_records",
               Par.FoldRecords.load(std::memory_order_relaxed));
    Telem->add("pta.par.barrier_waits",
               Par.BarrierWaits.load(std::memory_order_relaxed));
    if (Res.IG)
      Telem->add("pta.par.memo_races", Res.IG->buildCounters().MemoRaces);
    Telem->gauge("pta.par.threads", Pool->width());
  }

  const MapUnmap::Counters &MC = MU.counters();
  Telem->add("mu.map_calls", MC.MapCalls);
  Telem->add("mu.unmap_calls", MC.UnmapCalls);
  Telem->add("mu.mapped_sources", MC.MappedSources);
  Telem->add("mu.invisible_vars", MC.InvisibleVars);
  Telem->add("mu.unmap_pairs", MC.UnmapPairs);

  uint64_t Entities = 0;
  Locs.forEachEntity([&Entities](const Entity *) { ++Entities; });
  Telem->add("loc.entities", Entities);

  // Memory gauges: point-in-time footprint snapshots (not totals), so
  // they land in the stats export's "gauges" section. The set-heap peak
  // is the CoW heap tier's high-water mark over this run.
  Telem->gauge("mem.peak_rss_kb", support::peakRssKb());
  Telem->gauge("mem.set_heap_bytes_peak", SS.HeapBytesPeak);
  Telem->gauge("mem.location_table_locations", Locs.numLocations());
  Telem->gauge("mem.location_table_entities", Entities);

  if (Res.IG) {
    Telem->add("ig.nodes", Res.IG->numNodes());
    Telem->add("ig.recursive_nodes", Res.IG->numRecursive());
    Telem->add("ig.approximate_nodes", Res.IG->numApproximate());
    Telem->add("ig.functions_covered", Res.IG->numFunctionsCovered());
    Telem->add("ig.nodes_created", Res.IG->buildCounters().NodesCreated);
    Telem->add("ig.child_cache_hits",
               Res.IG->buildCounters().ChildCacheHits);
    Telem->add("ig.canonical_fallbacks",
               Res.IG->buildCounters().CanonicalFallbacks);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Extern-call model
//===----------------------------------------------------------------------===//

ExternModel mcpta::pta::externCallModel(const std::string &Name) {
  // Functions that return (a pointer into) their first argument.
  static const char *const ReturnsArg0[] = {
      "strcpy", "strncpy", "strcat", "strncat", "memcpy",
      "memmove", "memset",  "strchr", "strrchr", "strstr",
      "strpbrk", "strtok",  "gets",   "fgets",
  };
  for (const char *N : ReturnsArg0)
    if (Name == N)
      return ExternModel::ReturnsArg0;

  static const char *const Neutral[] = {
      "printf", "fprintf", "sprintf", "snprintf", "puts",   "putchar",
      "scanf",  "fscanf",  "sscanf",  "getchar",  "free",   "strlen",
      "strcmp", "strncmp", "atoi",    "atof",     "abs",    "rand",
      "srand",  "time",    "clock",   "fopen",    "fclose", "fread",
      "fwrite", "fflush",  "feof",    "qsort",    "sqrt",   "pow",
      "sin",    "cos",     "tan",     "exp",      "log",    "floor",
      "ceil",   "fabs",    "toupper", "tolower",  "isalpha", "isdigit",
      "isspace",
  };
  for (const char *N : Neutral)
    if (Name == N)
      return ExternModel::Neutral;
  return ExternModel::Unknown;
}

//===----------------------------------------------------------------------===//
// FunctionWarningLog
//===----------------------------------------------------------------------===//

bool FunctionWarningLog::add(const cf::FunctionDecl *Fn,
                             const std::string &Msg) {
  OwnerEntry *E = nullptr;
  for (OwnerEntry &O : Owners)
    if (O.Fn == Fn) {
      E = &O;
      break;
    }
  if (!E) {
    Owners.push_back(OwnerEntry{Fn, {}});
    E = &Owners.back();
  }
  auto It = std::lower_bound(E->Msgs.begin(), E->Msgs.end(), Msg);
  if (It != E->Msgs.end() && *It == Msg)
    return false;
  E->Msgs.insert(It, Msg);
  return true;
}

std::vector<std::pair<std::string, std::vector<std::string>>>
FunctionWarningLog::sortedByName() const {
  std::vector<std::pair<std::string, std::vector<std::string>>> Out;
  Out.reserve(Owners.size());
  for (const OwnerEntry &O : Owners)
    Out.emplace_back(O.Fn ? O.Fn->name() : std::string(), O.Msgs);
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Out;
}

const std::vector<std::string> *
FunctionWarningLog::messagesOf(const cf::FunctionDecl *Fn) const {
  for (const OwnerEntry &O : Owners)
    if (O.Fn == Fn)
      return &O.Msgs;
  return nullptr;
}

Analyzer::Result Analyzer::run(const Program &Prog, const Options &Opts) {
  Result Res;
  Res.Locs = std::make_unique<LocationTable>();
  AnalyzerImpl Impl(Prog, Opts, Res);
  Impl.run();
  Impl.publishTelemetry();
  return Res;
}

Analyzer::Result Analyzer::run(const Program &Prog) {
  return run(Prog, Options());
}
