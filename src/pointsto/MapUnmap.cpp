//===- MapUnmap.cpp - Interprocedural map/unmap ------------------------------===//

#include "pointsto/MapUnmap.h"

#include <algorithm>
#include <cassert>

using namespace mcpta;
using namespace mcpta::pta;
using namespace mcpta::simple;
namespace cf = mcpta::cfront;

namespace {

/// A location is visible inside any callee iff its storage is
/// program-global. Frame entities — including the *caller's* locals,
/// params, temps, and symbolics — are invisible: even under recursion
/// they denote a different activation than the callee's own frame.
bool isGloballyVisible(const Location *L) {
  const Entity *Root = L->root();
  switch (Root->kind()) {
  case Entity::Kind::Heap:
  case Entity::Kind::Null:
  case Entity::Kind::Function:
  case Entity::Kind::String:
    return true;
  case Entity::Kind::Variable:
    return Root->var()->isGlobal();
  case Entity::Kind::Retval:
  case Entity::Kind::Symbolic:
    return false;
  }
  return false;
}

/// Can this location hold (or contain) pointers that the traversal must
/// follow?
bool isPointerBearingStorage(const Location *L) {
  if (L->isHeap())
    return true;
  const cf::Type *Ty = L->type();
  return Ty && Ty->isPointerBearing();
}

} // namespace

struct MapUnmap::MapState {
  const PointsToSet *CallerS = nullptr;
  const cf::FunctionDecl *Callee = nullptr;
  MapResult R;
  /// Caller invisible location id -> its unique symbolic stand-in.
  /// Sorted by id, binary-search lookup.
  std::vector<std::pair<LocationId, const Location *>> InvMap;
  /// (callee id << 32 | caller id) pairs already traversed, sorted.
  std::vector<uint64_t> Visited;
  /// Symbolic root entities standing for more than one invisible
  /// (a handful at most; linear membership).
  std::vector<const Entity *> MultiSyms;

  const Location *findInv(LocationId Id) const {
    auto It = std::lower_bound(
        InvMap.begin(), InvMap.end(), Id,
        [](const std::pair<LocationId, const Location *> &P, LocationId I) {
          return P.first < I;
        });
    return (It != InvMap.end() && It->first == Id) ? It->second : nullptr;
  }
};

const Location *MapUnmap::translateTarget(MapState &St,
                                          const Location *Target,
                                          const Location *ParentCalleeLoc) {
  if (isGloballyVisible(Target))
    return Target;

  if (const Location *Sym = St.findInv(Target->id()))
    return Sym; // one invisible -> at most one symbolic name

  const Entity *SymE = Locs.symbolic(St.Callee, ParentCalleeLoc);
  const Location *SymLoc = Locs.get(SymE);
  auto It = std::lower_bound(
      St.InvMap.begin(), St.InvMap.end(), Target->id(),
      [](const std::pair<LocationId, const Location *> &P, LocationId I) {
        return P.first < I;
      });
  St.InvMap.insert(It, {Target->id(), SymLoc});
  ++Ctrs.InvisibleVars;
  auto &Reps = St.R.MapInfo.getOrCreate(SymLoc->id());
  Reps.push_back(Target->id());
  if (Reps.size() > 1 &&
      std::find(St.MultiSyms.begin(), St.MultiSyms.end(), SymE) ==
          St.MultiSyms.end())
    St.MultiSyms.push_back(SymE);
  return SymLoc;
}

void MapUnmap::traverse(MapState &St, const Location *CalleeLoc,
                        const Location *CallerLoc) {
  const cf::Type *Ty = CallerLoc->type();

  // Aggregate storage: descend into pointer-bearing components.
  if (!CallerLoc->isHeap() && Ty) {
    if (const auto *RT = cf::dynCast<cf::RecordType>(Ty)) {
      for (const cf::FieldDecl *F : RT->decl()->fields())
        if (F->type()->isPointerBearing())
          traverse(St, Locs.withField(CalleeLoc, F),
                   Locs.withField(CallerLoc, F));
      return;
    }
    if (const auto *AT = cf::dynCast<cf::ArrayType>(Ty)) {
      if (!AT->element()->isPointerBearing())
        return;
      traverse(St, Locs.withElem(CalleeLoc, true),
               Locs.withElem(CallerLoc, true));
      traverse(St, Locs.withElem(CalleeLoc, false),
               Locs.withElem(CallerLoc, false));
      return;
    }
    if (!Ty->isPointer())
      return;
  }

  uint64_t Key =
      (static_cast<uint64_t>(CalleeLoc->id()) << 32) | CallerLoc->id();
  auto VIt = std::lower_bound(St.Visited.begin(), St.Visited.end(), Key);
  if (VIt != St.Visited.end() && *VIt == Key)
    return;
  St.Visited.insert(VIt, Key);

  // Map the pointer's relationships, definite ones first (the paper's
  // accuracy heuristic for assigning symbolic names).
  std::vector<LocDef> Targets = St.CallerS->targetsOf(CallerLoc, Locs);
  std::stable_sort(Targets.begin(), Targets.end(),
                   [](const LocDef &A, const LocDef &B) {
                     return A.D < B.D; // D before P
                   });
  if (!Targets.empty())
    St.R.RepresentedSources.push_back(CallerLoc->id());
  for (const LocDef &T : Targets) {
    const Location *CT = translateTarget(St, T.Loc, CalleeLoc);
    St.R.CalleeInput.insert(CalleeLoc, CT, T.D);
    if (isPointerBearingStorage(T.Loc))
      traverse(St, CT, T.Loc);
  }
}

MapResult MapUnmap::map(const PointsToSet &CallerS,
                        const cf::FunctionDecl *Callee,
                        const std::vector<std::vector<LocDef>> &ActualRLocs,
                        const std::vector<const Operand *> &Actuals) {
  ++Ctrs.MapCalls;
  MapState St;
  St.CallerS = &CallerS;
  St.Callee = Callee;

  // 1. Formals inherit the relationships of the corresponding actuals.
  const auto &Formals = Callee->params();
  for (size_t I = 0; I < Formals.size(); ++I) {
    const Location *FLoc = Locs.varLoc(Formals[I]);
    const cf::Type *FTy = Formals[I]->type();

    if (FTy->isRecord()) {
      // By-value struct: associate storage fieldwise with the actual.
      if (I < Actuals.size() && Actuals[I] && Actuals[I]->isRef() &&
          Actuals[I]->Ref.isValid() && !Actuals[I]->Ref.Deref &&
          Actuals[I]->Ref.Path.empty()) {
        const Location *ALoc = Locs.varLoc(Actuals[I]->Ref.Base);
        traverse(St, FLoc, ALoc);
      }
      continue;
    }

    if (!FTy->isPointerBearing())
      continue;
    if (I >= ActualRLocs.size())
      continue;
    for (const LocDef &T : ActualRLocs[I]) {
      const Location *CT = translateTarget(St, T.Loc, FLoc);
      St.R.CalleeInput.insert(FLoc, CT, T.D);
      if (isPointerBearingStorage(T.Loc))
        traverse(St, CT, T.Loc);
    }
  }

  // 2. Globals (and the heap summary) keep their relationships; their
  // reachable invisible targets are renamed.
  for (const cf::VarDecl *G : Prog.globals()) {
    if (!G->type()->isPointerBearing())
      continue;
    const Location *GL = Locs.varLoc(G);
    traverse(St, GL, GL);
  }
  traverse(St, Locs.heap(), Locs.heap());
  // String storage holds no pointers (char arrays), so it needs no
  // traversal.

  // 3. Demote every pair involving a symbolic that stands for more than
  // one invisible variable (Property 3.1 would otherwise be violated by
  // a definite claim).
  if (!St.MultiSyms.empty()) {
    // One linear pass over the sorted entry run: demotion never adds or
    // reorders pairs, so the rebuilt run appends in key order.
    auto isMulti = [&](LocationId Id) {
      const Entity *Root = Locs.byId(Id)->root();
      return std::find(St.MultiSyms.begin(), St.MultiSyms.end(), Root) !=
             St.MultiSyms.end();
    };
    PointsToSet Demoted;
    const PointsToSet::Entry *E = St.R.CalleeInput.entries();
    for (size_t I = 0, N = St.R.CalleeInput.size(); I < N; ++I) {
      bool Multi = isMulti(static_cast<LocationId>(E[I].K >> 32)) ||
                   isMulti(static_cast<LocationId>(E[I].K & 0xffffffffu));
      Demoted.insertKey(E[I].K, Multi ? Def::P : E[I].D);
    }
    St.R.CalleeInput = std::move(Demoted);
  }

  // Deterministic map info: representative lists sorted by location id.
  St.R.MapInfo.normalize();

  auto &Reps = St.R.RepresentedSources;
  std::sort(Reps.begin(), Reps.end());
  Reps.erase(std::unique(Reps.begin(), Reps.end()), Reps.end());

  Ctrs.MappedSources += Reps.size();
  // The traversal above is where invisible-variable chains mint new
  // symbolic entities; report the table size so the Locations budget
  // trips at the site responsible for the growth.
  if (Meter)
    Meter->noteLocations(Locs.numLocations());
  return std::move(St.R);
}

std::vector<const Location *>
MapUnmap::translateBack(const Location *CalleeLoc,
                        const cf::FunctionDecl *Callee,
                        const MapResult &M) const {
  const Entity *Root = CalleeLoc->root();
  switch (Root->kind()) {
  case Entity::Kind::Heap:
  case Entity::Kind::Null:
  case Entity::Kind::Function:
  case Entity::Kind::String:
    return {CalleeLoc};
  case Entity::Kind::Variable:
    if (Root->var()->isGlobal())
      return {CalleeLoc};
    return {}; // callee-private storage dies at return
  case Entity::Kind::Retval:
    return {}; // handled separately by the analyzer
  case Entity::Kind::Symbolic: {
    (void)Callee;
    const std::vector<LocationId> *Reps =
        M.MapInfo.find(Locs.get(Root)->id());
    if (!Reps)
      return {}; // not bound in this context
    std::vector<const Location *> Out;
    for (LocationId BaseId : *Reps) {
      const Location *Base = Locs.byId(BaseId);
      // Re-apply the callee location's path on the caller side.
      const Location *L = Base;
      for (const PathElem &PE : CalleeLoc->path()) {
        switch (PE.K) {
        case PathElem::Kind::Field:
          L = Locs.withField(L, PE.Field);
          break;
        case PathElem::Kind::Head:
          L = Locs.withElem(L, true);
          break;
        case PathElem::Kind::Tail:
          L = Locs.withElem(L, false);
          break;
        }
      }
      Out.push_back(L);
    }
    return Out;
  }
  }
  return {};
}

PointsToSet MapUnmap::unmap(const PointsToSet &CallerS,
                            const PointsToSet &CalleeOut,
                            const cf::FunctionDecl *Callee,
                            const MapResult &M) const {
  ++Ctrs.UnmapCalls;
  PointsToSet Out = CallerS;
  Out.killFromAll(M.RepresentedSources);

  // Track how many distinct callee sources feed each caller source; a
  // caller location assembled from several callee views cannot keep
  // definite claims. Flat (caller id << 32 | callee id) pairs, counted
  // after one sort.
  std::vector<uint64_t> Contributors;

  CalleeOut.forEach(Locs, [&](const Location *P, const Location *Q, Def D) {
    std::vector<const Location *> Srcs = translateBack(P, Callee, M);
    if (Srcs.empty())
      return;
    std::vector<const Location *> Dsts = translateBack(Q, Callee, M);
    if (Dsts.empty())
      return;
    Def DP = (Srcs.size() == 1 && Dsts.size() == 1) ? D : Def::P;
    for (const Location *S : Srcs) {
      Contributors.push_back((static_cast<uint64_t>(S->id()) << 32) |
                             P->id());
      Def DS = (DP == Def::D && !S->isSummary()) ? Def::D : Def::P;
      for (const Location *T : Dsts) {
        Out.insert(S, T, DS);
        ++Ctrs.UnmapPairs;
      }
    }
  });

  // Sources with more than one distinct contributing callee location.
  std::sort(Contributors.begin(), Contributors.end());
  Contributors.erase(std::unique(Contributors.begin(), Contributors.end()),
                     Contributors.end());
  std::vector<LocationId> MultiFed;
  for (size_t I = 0; I < Contributors.size();) {
    LocationId Src = static_cast<LocationId>(Contributors[I] >> 32);
    size_t J = I;
    while (J < Contributors.size() &&
           static_cast<LocationId>(Contributors[J] >> 32) == Src)
      ++J;
    if (J - I > 1)
      MultiFed.push_back(Src);
    I = J;
  }
  Out.demoteFromAll(MultiFed);

  return Out;
}
