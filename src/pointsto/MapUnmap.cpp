//===- MapUnmap.cpp - Interprocedural map/unmap ------------------------------===//

#include "pointsto/MapUnmap.h"

#include <algorithm>
#include <cassert>

using namespace mcpta;
using namespace mcpta::pta;
using namespace mcpta::simple;
namespace cf = mcpta::cfront;

namespace {

/// A location is visible inside any callee iff its storage is
/// program-global. Frame entities — including the *caller's* locals,
/// params, temps, and symbolics — are invisible: even under recursion
/// they denote a different activation than the callee's own frame.
bool isGloballyVisible(const Location *L) {
  const Entity *Root = L->root();
  switch (Root->kind()) {
  case Entity::Kind::Heap:
  case Entity::Kind::Null:
  case Entity::Kind::Function:
  case Entity::Kind::String:
    return true;
  case Entity::Kind::Variable:
    return Root->var()->isGlobal();
  case Entity::Kind::Retval:
  case Entity::Kind::Symbolic:
    return false;
  }
  return false;
}

/// Can this location hold (or contain) pointers that the traversal must
/// follow?
bool isPointerBearingStorage(const Location *L) {
  if (L->isHeap())
    return true;
  const cf::Type *Ty = L->type();
  return Ty && Ty->isPointerBearing();
}

} // namespace

struct MapUnmap::MapState {
  const PointsToSet *CallerS = nullptr;
  const cf::FunctionDecl *Callee = nullptr;
  MapResult R;
  /// Caller invisible location -> its unique symbolic stand-in.
  std::map<const Location *, const Location *> InvMap;
  std::set<std::pair<const Location *, const Location *>> Visited;
  /// Symbolic root entities standing for more than one invisible.
  std::set<const Entity *> MultiSyms;
};

const Location *MapUnmap::translateTarget(MapState &St,
                                          const Location *Target,
                                          const Location *ParentCalleeLoc) {
  if (isGloballyVisible(Target))
    return Target;

  auto It = St.InvMap.find(Target);
  if (It != St.InvMap.end())
    return It->second; // one invisible -> at most one symbolic name

  const Entity *SymE = Locs.symbolic(St.Callee, ParentCalleeLoc);
  const Location *SymLoc = Locs.get(SymE);
  St.InvMap[Target] = SymLoc;
  ++Ctrs.InvisibleVars;
  auto &Reps = St.R.MapInfo[SymLoc];
  Reps.push_back(Target);
  if (Reps.size() > 1)
    St.MultiSyms.insert(SymE);
  return SymLoc;
}

void MapUnmap::traverse(MapState &St, const Location *CalleeLoc,
                        const Location *CallerLoc) {
  const cf::Type *Ty = CallerLoc->type();

  // Aggregate storage: descend into pointer-bearing components.
  if (!CallerLoc->isHeap() && Ty) {
    if (const auto *RT = cf::dynCast<cf::RecordType>(Ty)) {
      for (const cf::FieldDecl *F : RT->decl()->fields())
        if (F->type()->isPointerBearing())
          traverse(St, Locs.withField(CalleeLoc, F),
                   Locs.withField(CallerLoc, F));
      return;
    }
    if (const auto *AT = cf::dynCast<cf::ArrayType>(Ty)) {
      if (!AT->element()->isPointerBearing())
        return;
      traverse(St, Locs.withElem(CalleeLoc, true),
               Locs.withElem(CallerLoc, true));
      traverse(St, Locs.withElem(CalleeLoc, false),
               Locs.withElem(CallerLoc, false));
      return;
    }
    if (!Ty->isPointer())
      return;
  }

  auto Key = std::make_pair(CalleeLoc, CallerLoc);
  if (!St.Visited.insert(Key).second)
    return;

  // Map the pointer's relationships, definite ones first (the paper's
  // accuracy heuristic for assigning symbolic names).
  std::vector<LocDef> Targets = St.CallerS->targetsOf(CallerLoc, Locs);
  std::stable_sort(Targets.begin(), Targets.end(),
                   [](const LocDef &A, const LocDef &B) {
                     return A.D < B.D; // D before P
                   });
  if (!Targets.empty())
    St.R.RepresentedSources.insert(CallerLoc);
  for (const LocDef &T : Targets) {
    const Location *CT = translateTarget(St, T.Loc, CalleeLoc);
    St.R.CalleeInput.insert(CalleeLoc, CT, T.D);
    if (isPointerBearingStorage(T.Loc))
      traverse(St, CT, T.Loc);
  }
}

MapResult MapUnmap::map(const PointsToSet &CallerS,
                        const cf::FunctionDecl *Callee,
                        const std::vector<std::vector<LocDef>> &ActualRLocs,
                        const std::vector<const Operand *> &Actuals) {
  ++Ctrs.MapCalls;
  MapState St;
  St.CallerS = &CallerS;
  St.Callee = Callee;

  // 1. Formals inherit the relationships of the corresponding actuals.
  const auto &Formals = Callee->params();
  for (size_t I = 0; I < Formals.size(); ++I) {
    const Location *FLoc = Locs.varLoc(Formals[I]);
    const cf::Type *FTy = Formals[I]->type();

    if (FTy->isRecord()) {
      // By-value struct: associate storage fieldwise with the actual.
      if (I < Actuals.size() && Actuals[I] && Actuals[I]->isRef() &&
          Actuals[I]->Ref.isValid() && !Actuals[I]->Ref.Deref &&
          Actuals[I]->Ref.Path.empty()) {
        const Location *ALoc = Locs.varLoc(Actuals[I]->Ref.Base);
        traverse(St, FLoc, ALoc);
      }
      continue;
    }

    if (!FTy->isPointerBearing())
      continue;
    if (I >= ActualRLocs.size())
      continue;
    for (const LocDef &T : ActualRLocs[I]) {
      const Location *CT = translateTarget(St, T.Loc, FLoc);
      St.R.CalleeInput.insert(FLoc, CT, T.D);
      if (isPointerBearingStorage(T.Loc))
        traverse(St, CT, T.Loc);
    }
  }

  // 2. Globals (and the heap summary) keep their relationships; their
  // reachable invisible targets are renamed.
  for (const cf::VarDecl *G : Prog.globals()) {
    if (!G->type()->isPointerBearing())
      continue;
    const Location *GL = Locs.varLoc(G);
    traverse(St, GL, GL);
  }
  traverse(St, Locs.heap(), Locs.heap());
  // String storage holds no pointers (char arrays), so it needs no
  // traversal.

  // 3. Demote every pair involving a symbolic that stands for more than
  // one invisible variable (Property 3.1 would otherwise be violated by
  // a definite claim).
  if (!St.MultiSyms.empty()) {
    PointsToSet Demoted;
    St.R.CalleeInput.forEach(Locs, [&](const Location *Src,
                                       const Location *Dst, Def D) {
      bool Multi = St.MultiSyms.count(Src->root()) ||
                   St.MultiSyms.count(Dst->root());
      Demoted.insert(Src, Dst, Multi ? Def::P : D);
    });
    St.R.CalleeInput = std::move(Demoted);
  }

  // Deterministic map info: sort representative lists by location id.
  for (auto &[Sym, Reps] : St.R.MapInfo) {
    std::sort(Reps.begin(), Reps.end(),
              [](const Location *A, const Location *B) {
                return A->id() < B->id();
              });
    Reps.erase(std::unique(Reps.begin(), Reps.end()), Reps.end());
  }

  Ctrs.MappedSources += St.R.RepresentedSources.size();
  // The traversal above is where invisible-variable chains mint new
  // symbolic entities; report the table size so the Locations budget
  // trips at the site responsible for the growth.
  if (Meter)
    Meter->noteLocations(Locs.numLocations());
  return std::move(St.R);
}

std::vector<const Location *>
MapUnmap::translateBack(const Location *CalleeLoc,
                        const cf::FunctionDecl *Callee,
                        const MapResult &M) const {
  const Entity *Root = CalleeLoc->root();
  switch (Root->kind()) {
  case Entity::Kind::Heap:
  case Entity::Kind::Null:
  case Entity::Kind::Function:
  case Entity::Kind::String:
    return {CalleeLoc};
  case Entity::Kind::Variable:
    if (Root->var()->isGlobal())
      return {CalleeLoc};
    return {}; // callee-private storage dies at return
  case Entity::Kind::Retval:
    return {}; // handled separately by the analyzer
  case Entity::Kind::Symbolic: {
    (void)Callee;
    auto It = M.MapInfo.find(Locs.get(Root));
    if (It == M.MapInfo.end())
      return {}; // not bound in this context
    std::vector<const Location *> Out;
    for (const Location *Base : It->second) {
      // Re-apply the callee location's path on the caller side.
      const Location *L = Base;
      for (const PathElem &PE : CalleeLoc->path()) {
        switch (PE.K) {
        case PathElem::Kind::Field:
          L = Locs.withField(L, PE.Field);
          break;
        case PathElem::Kind::Head:
          L = Locs.withElem(L, true);
          break;
        case PathElem::Kind::Tail:
          L = Locs.withElem(L, false);
          break;
        }
      }
      Out.push_back(L);
    }
    return Out;
  }
  }
  return {};
}

PointsToSet MapUnmap::unmap(const PointsToSet &CallerS,
                            const PointsToSet &CalleeOut,
                            const cf::FunctionDecl *Callee,
                            const MapResult &M) const {
  ++Ctrs.UnmapCalls;
  PointsToSet Out = CallerS;
  for (const Location *Src : M.RepresentedSources)
    Out.killFrom(Src);

  // Track how many distinct callee sources feed each caller source; a
  // caller location assembled from several callee views cannot keep
  // definite claims.
  std::map<const Location *, std::set<const Location *>> Contributors;

  CalleeOut.forEach(Locs, [&](const Location *P, const Location *Q, Def D) {
    std::vector<const Location *> Srcs = translateBack(P, Callee, M);
    if (Srcs.empty())
      return;
    std::vector<const Location *> Dsts = translateBack(Q, Callee, M);
    if (Dsts.empty())
      return;
    Def DP = (Srcs.size() == 1 && Dsts.size() == 1) ? D : Def::P;
    for (const Location *S : Srcs) {
      Contributors[S].insert(P);
      Def DS = (DP == Def::D && !S->isSummary()) ? Def::D : Def::P;
      for (const Location *T : Dsts) {
        Out.insert(S, T, DS);
        ++Ctrs.UnmapPairs;
      }
    }
  });

  for (const auto &[S, Contribs] : Contributors)
    if (Contribs.size() > 1)
      Out.demoteFrom(S);

  return Out;
}
