//===- PointsToSet.h - Points-to triple sets --------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis value: a set of (x, y, D|P) triples over abstract stack
/// locations (Definitions 3.1/3.2 of the paper). Deterministic iteration
/// order (sorted by source then target id). The lattice operations match
/// Figure 1/4:
///   - Merge: union where a pair definite in both stays definite and is
///     possible otherwise (a relationship holding on only some paths is
///     possible, Definition 3.3);
///   - subset (containment) for the recursion memoization check, where a
///     definite pair is covered by the same pair possible;
///   - Bottom (unreachable) is represented externally as an empty
///     std::optional.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_POINTSTO_POINTSTOSET_H
#define MCPTA_POINTSTO_POINTSTOSET_H

#include "pointsto/Location.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcpta {
namespace pta {

/// Definiteness of a points-to relationship.
enum class Def : uint8_t {
  D, ///< definitely points-to (holds on every path; both ends single)
  P, ///< possibly points-to
};

/// Conjunction d1 ∧ d2 used throughout Table 1's R-location rules.
inline Def meet(Def A, Def B) { return (A == Def::D && B == Def::D) ? Def::D : Def::P; }

/// A location together with a definiteness flag — the element type of
/// L-location and R-location sets (Sec. 3.2).
struct LocDef {
  const Location *Loc = nullptr;
  Def D = Def::P;

  bool operator==(const LocDef &O) const { return Loc == O.Loc && D == O.D; }
  bool operator<(const LocDef &O) const {
    if (Loc != O.Loc)
      return Loc->id() < O.Loc->id();
    return D < O.D;
  }
};

/// A points-to set: map from (source, target) location pair to D/P.
class PointsToSet {
public:
  using PairKey = uint64_t;
  static PairKey key(const Location *Src, const Location *Dst) {
    return (static_cast<uint64_t>(Src->id()) << 32) | Dst->id();
  }

  bool empty() const { return Pairs.empty(); }
  size_t size() const { return Pairs.size(); }

  /// Inserts or weakens a pair; conflicting definiteness resolves to P
  /// (always safe, possibly less precise). Returns true if the set
  /// changed.
  bool insert(const Location *Src, const Location *Dst, Def D);

  /// Removes every pair originating at Src. Returns true if any removed.
  bool killFrom(const Location *Src);

  /// Weakens every definite pair originating at Src to possible.
  void demoteFrom(const Location *Src);

  /// Weakens every definite pair in the set to possible. Used by the
  /// resource-governed bailouts: a fixed point cut off before
  /// convergence cannot vouch for any definiteness (Definition 3.3), so
  /// its estimate survives only with every pair possible.
  void demoteAll();

  bool contains(const Location *Src, const Location *Dst) const {
    return Pairs.count(key(Src, Dst)) != 0;
  }
  /// Returns the definiteness of (Src, Dst), or nullopt if absent.
  std::optional<Def> lookup(const Location *Src, const Location *Dst) const;

  /// All (target, def) pairs for a source.
  std::vector<LocDef> targetsOf(const Location *Src,
                                const LocationTable &Locs) const;
  bool hasTargets(const Location *Src) const;

  /// Merge per Figure 1: definite iff definite in both operands.
  /// Returns true if this set changed.
  bool mergeWith(const PointsToSet &Other);

  /// True if every pair of *this is covered by Other (same pair with any
  /// definiteness covers a definite pair; a possible pair is covered
  /// only by a possible pair — covering P with D would claim more than
  /// the summary supports).
  bool subsetOf(const PointsToSet &Other) const;

  bool operator==(const PointsToSet &O) const { return Pairs == O.Pairs; }
  bool operator!=(const PointsToSet &O) const { return !(*this == O); }

  /// Deterministic iteration (sorted by source id, then target id).
  struct Pair {
    const Location *Src;
    const Location *Dst;
    Def D;
  };
  std::vector<Pair> pairs(const LocationTable &Locs) const;

  template <typename Fn> void forEach(const LocationTable &Locs, Fn F) const {
    for (const auto &[K, D] : Pairs)
      F(Locs.byId(static_cast<uint32_t>(K >> 32)),
        Locs.byId(static_cast<uint32_t>(K & 0xffffffffu)), D);
  }

  /// Renders as "(x,y,D) (a,b,P) ..." sorted by location name for stable
  /// test expectations.
  std::string str(const LocationTable &Locs) const;

private:
  std::map<PairKey, Def> Pairs;
};

} // namespace pta
} // namespace mcpta

#endif // MCPTA_POINTSTO_POINTSTOSET_H
