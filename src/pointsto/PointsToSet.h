//===- PointsToSet.h - Points-to triple sets --------------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis value: a set of (x, y, D|P) triples over abstract stack
/// locations (Definitions 3.1/3.2 of the paper). Deterministic iteration
/// order (sorted by source then target id). The lattice operations match
/// Figure 1/4:
///   - Merge: union where a pair definite in both stays definite and is
///     possible otherwise (a relationship holding on only some paths is
///     possible, Definition 3.3);
///   - subset (containment) for the recursion memoization check, where a
///     definite pair is covered by the same pair possible;
///   - Bottom (unreachable) is represented externally as an empty
///     std::optional.
///
/// Representation: a flat vector of {PairKey, Def} entries sorted by
/// key — dense LocationIds packed as (SrcId << 32) | DstId — with two
/// storage tiers:
///   - small sets (up to a handful of pairs) live inline in the object,
///     no allocation at all;
///   - larger sets live in a shared, copy-on-write heap block. Copying
///     a set (per-statement IN snapshots, memoized IG inputs/outputs,
///     the unmap base copy) is then O(1); the copy materializes only if
///     one side is later mutated.
/// The batch kernels (mergeWith/mergeAll/subsetOf/killFromAll/
/// demoteFromAll) are linear merges and scans over the sorted entries
/// instead of per-element ordered-map operations. Process-wide traffic
/// counters (PointsToSet::stats) surface as the pta.set.* telemetry.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_POINTSTO_POINTSTOSET_H
#define MCPTA_POINTSTO_POINTSTOSET_H

#include "pointsto/Location.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mcpta {
namespace pta {

/// Definiteness of a points-to relationship.
enum class Def : uint8_t {
  D, ///< definitely points-to (holds on every path; both ends single)
  P, ///< possibly points-to
};

/// Conjunction d1 ∧ d2 used throughout Table 1's R-location rules.
inline Def meet(Def A, Def B) { return (A == Def::D && B == Def::D) ? Def::D : Def::P; }

/// A location together with a definiteness flag — the element type of
/// L-location and R-location sets (Sec. 3.2).
struct LocDef {
  const Location *Loc = nullptr;
  Def D = Def::P;

  bool operator==(const LocDef &O) const { return Loc == O.Loc && D == O.D; }
  bool operator<(const LocDef &O) const {
    if (Loc != O.Loc)
      return Loc->id() < O.Loc->id();
    return D < O.D;
  }
};

/// A points-to set: sorted flat triples keyed by (source, target) id.
class PointsToSet {
public:
  using PairKey = uint64_t;
  static PairKey key(const Location *Src, const Location *Dst) {
    return (static_cast<uint64_t>(Src->id()) << 32) | Dst->id();
  }
  static PairKey keyIds(LocationId Src, LocationId Dst) {
    return (static_cast<uint64_t>(Src) << 32) | Dst;
  }

  /// One stored triple; entries are strictly increasing by K.
  struct Entry {
    PairKey K;
    Def D;
    bool operator==(const Entry &O) const { return K == O.K && D == O.D; }
  };

  /// Plain-value copy of the process-wide traffic counters, for
  /// run-start snapshots and delta arithmetic (see Stats::snapshot).
  struct StatsSnapshot {
    uint64_t PeakPairs = 0;
    uint64_t CowShares = 0;
    uint64_t CowDetaches = 0;
    uint64_t KernelCalls = 0;
    uint64_t HeapBytes = 0;
    uint64_t HeapBytesPeak = 0;
  };

  /// Process-wide representation traffic, published per analysis run as
  /// the pta.set.* telemetry counters (the analyzer snapshots them at
  /// run start and reports the deltas; PeakPairs is reset per run).
  /// Relaxed atomics: sets are shared and mutated across the scheduler's
  /// worker threads, and these counters only need to count — no
  /// cross-counter consistency, no ordering with the set data itself
  /// (the CoW shared_ptr control block provides that).
  struct Stats {
    std::atomic<uint64_t> PeakPairs{0};   ///< largest single set materialized
    std::atomic<uint64_t> CowShares{0};   ///< copies answered by sharing
    std::atomic<uint64_t> CowDetaches{0}; ///< shared blocks copied on mutation
    std::atomic<uint64_t> KernelCalls{0}; ///< batch kernel invocations
    /// Live heap-tier footprint: the sum of every Rep block's vector
    /// capacity in bytes. Maintained by Rep's constructors/destructor
    /// and re-synced after capacity-changing mutations.
    std::atomic<uint64_t> HeapBytes{0};
    /// High-water mark of HeapBytes; the analyzer resets it to the
    /// current HeapBytes at run start and publishes the per-run peak as
    /// the `mem.set_heap_bytes_peak` gauge. Maintained with a CAS max,
    /// so concurrent syncs can only raise it.
    std::atomic<uint64_t> HeapBytesPeak{0};

    StatsSnapshot snapshot() const {
      StatsSnapshot S;
      S.PeakPairs = PeakPairs.load(std::memory_order_relaxed);
      S.CowShares = CowShares.load(std::memory_order_relaxed);
      S.CowDetaches = CowDetaches.load(std::memory_order_relaxed);
      S.KernelCalls = KernelCalls.load(std::memory_order_relaxed);
      S.HeapBytes = HeapBytes.load(std::memory_order_relaxed);
      S.HeapBytesPeak = HeapBytesPeak.load(std::memory_order_relaxed);
      return S;
    }
  };
  static Stats &stats() {
    static Stats S;
    return S;
  }

  PointsToSet() = default;
  PointsToSet(const PointsToSet &O) : Heap(O.Heap), InlineN(O.InlineN) {
    if (Heap)
      stats().CowShares.fetch_add(1, std::memory_order_relaxed);
    else
      std::copy_n(O.InlineBuf, InlineN, InlineBuf);
  }
  PointsToSet(PointsToSet &&O) noexcept
      : Heap(std::move(O.Heap)), InlineN(O.InlineN) {
    if (!Heap)
      std::copy_n(O.InlineBuf, InlineN, InlineBuf);
    O.InlineN = 0;
  }
  PointsToSet &operator=(const PointsToSet &O) {
    if (this == &O)
      return *this;
    Heap = O.Heap;
    InlineN = O.InlineN;
    if (Heap)
      stats().CowShares.fetch_add(1, std::memory_order_relaxed);
    else
      std::copy_n(O.InlineBuf, InlineN, InlineBuf);
    return *this;
  }
  PointsToSet &operator=(PointsToSet &&O) noexcept {
    if (this == &O)
      return *this;
    Heap = std::move(O.Heap);
    InlineN = O.InlineN;
    if (!Heap)
      std::copy_n(O.InlineBuf, InlineN, InlineBuf);
    O.InlineN = 0;
    return *this;
  }

  bool empty() const { return size() == 0; }
  size_t size() const { return Heap ? Heap->E.size() : InlineN; }

  /// Inserts or weakens a pair; conflicting definiteness resolves to P
  /// (always safe, possibly less precise). Returns true if the set
  /// changed.
  bool insert(const Location *Src, const Location *Dst, Def D) {
    return insertKey(key(Src, Dst), D);
  }
  bool insertKey(PairKey K, Def D);

  /// Removes every pair originating at Src. Returns true if any removed.
  bool killFrom(const Location *Src);

  /// Batch kernel: removes every pair originating at any id in
  /// \p SortedSrcIds (ascending, unique) in one linear scan. Returns
  /// true if any removed.
  bool killFromAll(const std::vector<LocationId> &SortedSrcIds);

  /// Weakens every definite pair originating at Src to possible.
  void demoteFrom(const Location *Src);

  /// Batch kernel: demotes from every id in \p SortedSrcIds (ascending,
  /// unique) in one linear scan.
  void demoteFromAll(const std::vector<LocationId> &SortedSrcIds);

  /// Weakens every definite pair in the set to possible. Used by the
  /// resource-governed bailouts: a fixed point cut off before
  /// convergence cannot vouch for any definiteness (Definition 3.3), so
  /// its estimate survives only with every pair possible.
  void demoteAll();

  bool contains(const Location *Src, const Location *Dst) const {
    return findKey(key(Src, Dst)) != nullptr;
  }
  /// Returns the definiteness of (Src, Dst), or nullopt if absent.
  std::optional<Def> lookup(const Location *Src, const Location *Dst) const;

  /// All (target, def) pairs for a source.
  std::vector<LocDef> targetsOf(const Location *Src,
                                const LocationTable &Locs) const;
  bool hasTargets(const Location *Src) const;

  /// Merge per Figure 1: definite iff definite in both operands.
  /// Returns true if this set changed. A single linear merge of the two
  /// sorted entry runs.
  bool mergeWith(const PointsToSet &Other);

  /// Batch kernel: the simultaneous merge of every set in \p Sets — the
  /// union of all pairs, definite iff present and definite in every
  /// operand. Equivalent to (and a k-way replacement for) folding
  /// mergeWith left to right, in one pass over all runs.
  static PointsToSet mergeAll(const std::vector<const PointsToSet *> &Sets);

  /// True if every pair of *this is covered by Other (same pair with any
  /// definiteness covers a definite pair; a possible pair is covered
  /// only by a possible pair — covering P with D would claim more than
  /// the summary supports).
  bool subsetOf(const PointsToSet &Other) const;

  bool operator==(const PointsToSet &O) const;
  bool operator!=(const PointsToSet &O) const { return !(*this == O); }

  /// Deterministic iteration (sorted by source id, then target id).
  struct Pair {
    const Location *Src;
    const Location *Dst;
    Def D;
  };
  std::vector<Pair> pairs(const LocationTable &Locs) const;

  template <typename Fn> void forEach(const LocationTable &Locs, Fn F) const {
    const Entry *E = entries();
    for (size_t I = 0, N = size(); I < N; ++I)
      F(Locs.byId(static_cast<LocationId>(E[I].K >> 32)),
        Locs.byId(static_cast<LocationId>(E[I].K & 0xffffffffu)), E[I].D);
  }

  /// Raw sorted entry run (id-packed keys) — the serializer writes these
  /// directly as id-sorted runs, no intermediate map.
  const Entry *entries() const { return Heap ? Heap->E.data() : InlineBuf; }

  /// Renders as "(x,y,D) (a,b,P) ..." sorted by location name for stable
  /// test expectations.
  std::string str(const LocationTable &Locs) const;

private:
  struct Rep {
    std::vector<Entry> E;
    /// Bytes this block currently contributes to Stats::HeapBytes.
    uint64_t TrackedBytes = 0;
    /// Intrusive share count. shared_ptr's use_count() is a relaxed
    /// read, which cannot order an in-place mutation after another
    /// thread's reads of the shared block — the CoW unique-owner check
    /// needs an acquire load paired with the release half of the last
    /// other owner's decrement (the parallel engine ships CoW shares
    /// across threads, docs/PARALLEL.md). RepPtr spells those orders
    /// out.
    std::atomic<uint32_t> RC{1};

    Rep() = default;
    Rep(const Rep &O) : E(O.E) { sync(); }
    explicit Rep(std::vector<Entry> V) : E(std::move(V)) { sync(); }
    Rep &operator=(const Rep &) = delete;
    ~Rep() {
      stats().HeapBytes.fetch_sub(TrackedBytes, std::memory_order_relaxed);
    }

    /// Reconciles HeapBytes with this block's current capacity; call
    /// after any mutation that may have reallocated.
    void sync() {
      Stats &S = stats();
      uint64_t Now = E.capacity() * sizeof(Entry);
      uint64_t Total = S.HeapBytes.fetch_add(Now - TrackedBytes,
                                             std::memory_order_relaxed) +
                       (Now - TrackedBytes);
      TrackedBytes = Now;
      uint64_t Peak = S.HeapBytesPeak.load(std::memory_order_relaxed);
      while (Total > Peak && !S.HeapBytesPeak.compare_exchange_weak(
                                 Peak, Total, std::memory_order_relaxed))
        ;
    }
  };

  /// Minimal intrusive owner of a Rep. Copy bumps the count (relaxed —
  /// acquiring a share needs no ordering), drop is a release decrement
  /// (acq_rel: the deleter must also observe every other owner's
  /// writes), and unique() is the acquire load that makes
  /// mutate-in-place safe after concurrent readers dropped out.
  class RepPtr {
  public:
    RepPtr() = default;
    /// Adopts a freshly allocated block (RC already 1).
    explicit RepPtr(Rep *R) : P(R) {}
    RepPtr(const RepPtr &O) : P(O.P) {
      if (P)
        P->RC.fetch_add(1, std::memory_order_relaxed);
    }
    RepPtr(RepPtr &&O) noexcept : P(O.P) { O.P = nullptr; }
    RepPtr &operator=(const RepPtr &O) {
      if (P != O.P) {
        reset();
        P = O.P;
        if (P)
          P->RC.fetch_add(1, std::memory_order_relaxed);
      }
      return *this;
    }
    RepPtr &operator=(RepPtr &&O) noexcept {
      if (this != &O) {
        reset();
        P = O.P;
        O.P = nullptr;
      }
      return *this;
    }
    ~RepPtr() { reset(); }

    Rep *operator->() const { return P; }
    Rep &operator*() const { return *P; }
    explicit operator bool() const { return P != nullptr; }
    bool operator==(const RepPtr &O) const { return P == O.P; }
    /// True iff this is the only owner — and, via acquire, every read a
    /// departed owner made of the block happens-before what the caller
    /// does to it next.
    bool unique() const { return P->RC.load(std::memory_order_acquire) == 1; }

  private:
    void reset() {
      if (P && P->RC.fetch_sub(1, std::memory_order_acq_rel) == 1)
        delete P;
      P = nullptr;
    }
    Rep *P = nullptr;
  };

  static constexpr uint32_t InlineCap = 4;

  const Def *findKey(PairKey K) const;
  /// Makes the entry run privately writable without changing its size
  /// (detaches a shared heap block). Returns the writable run.
  Entry *detachForWrite();
  /// Replaces the contents with \p V, choosing inline vs heap storage.
  void adopt(std::vector<Entry> V);
  void notePeak(size_t N) {
    Stats &S = stats();
    uint64_t Peak = S.PeakPairs.load(std::memory_order_relaxed);
    while (N > Peak && !S.PeakPairs.compare_exchange_weak(
                           Peak, N, std::memory_order_relaxed))
      ;
  }

  /// Heap tier: engaged once the set outgrows InlineCap (and kept from
  /// then on — a shrunk set stays heap; logical content is what the
  /// entry run says, not which tier holds it). Shared between copies
  /// until one side mutates.
  RepPtr Heap;
  /// Inline tier: the first InlineN of InlineBuf, valid iff !Heap.
  Entry InlineBuf[InlineCap];
  uint32_t InlineN = 0;
};

} // namespace pta
} // namespace mcpta

#endif // MCPTA_POINTSTO_POINTSTOSET_H
