//===- BodyKernel.cpp - Sequential body-transfer kernel -------------------===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "pointsto/BodyKernel.h"

using namespace mcpta;
using namespace mcpta::pta;
using namespace mcpta::simple;
namespace cf = mcpta::cfront;

/// Warning-attribution owner for a node being evaluated.
static const cf::FunctionDecl *ownerName(const IGNode *Ign) {
  return Ign ? Ign->function() : nullptr;
}

void BodyKernel::applyAssignRule(PointsToSet &S,
                                 const std::vector<LocDef> &Llocs,
                                 const std::vector<LocDef> &Rlocs) {
  // kill_set: all relationships of definite L-locations.
  for (const LocDef &L : Llocs)
    if (L.D == Def::D)
      S.killFrom(L.Loc);
  // change_set: definite relationships of possible L-locations weaken.
  for (const LocDef &L : Llocs)
    if (L.D == Def::P)
      S.demoteFrom(L.Loc);
  // gen_set: cross product; definite only when both sides are definite
  // and the target can be definite at all.
  for (const LocDef &L : Llocs)
    for (const LocDef &R : Rlocs) {
      Def D = meet(L.D, R.D);
      if (R.Loc->isSummary())
        D = Def::P;
      S.insert(L.Loc, R.Loc, D);
    }
}

void BodyKernel::pointerSuffixPaths(const cf::Type *Ty,
                                    std::vector<PathElem> &Prefix,
                                    std::vector<std::vector<PathElem>> &Out) {
  if (!Ty)
    return;
  switch (Ty->kind()) {
  case cf::Type::Kind::Pointer:
    Out.push_back(Prefix);
    return;
  case cf::Type::Kind::Record:
    for (const cf::FieldDecl *F : cf::cast<cf::RecordType>(Ty)->decl()->fields()) {
      if (!F->type()->isPointerBearing())
        continue;
      Prefix.push_back(PathElem::field(F));
      pointerSuffixPaths(F->type(), Prefix, Out);
      Prefix.pop_back();
    }
    return;
  case cf::Type::Kind::Array: {
    const auto *AT = cf::cast<cf::ArrayType>(Ty);
    if (!AT->element()->isPointerBearing())
      return;
    Prefix.push_back(PathElem::head());
    pointerSuffixPaths(AT->element(), Prefix, Out);
    Prefix.pop_back();
    Prefix.push_back(PathElem::tail());
    pointerSuffixPaths(AT->element(), Prefix, Out);
    Prefix.pop_back();
    return;
  }
  default:
    return;
  }
}

const Location *BodyKernel::applyPath(LocationTable &Locs, const Location *L,
                                      const std::vector<PathElem> &Path) {
  for (const PathElem &PE : Path) {
    switch (PE.K) {
    case PathElem::Kind::Field:
      L = Locs.withField(L, PE.Field);
      break;
    case PathElem::Kind::Head:
      L = Locs.withElem(L, true);
      break;
    case PathElem::Kind::Tail:
      L = Locs.withElem(L, false);
      break;
    }
  }
  return L;
}

void BodyKernel::applyStructCopy(PointsToSet &S,
                                 const std::vector<LocDef> &LhsStorage,
                                 const std::vector<LocDef> &RhsStorage,
                                 const cf::Type *Ty) {
  std::vector<std::vector<PathElem>> Suffixes;
  std::vector<PathElem> Prefix;
  pointerSuffixPaths(Ty, Prefix, Suffixes);
  for (const std::vector<PathElem> &P : Suffixes) {
    std::vector<LocDef> Llocs, Rlocs;
    for (const LocDef &L : LhsStorage) {
      const Location *LL = applyPath(Locs, L.Loc, P);
      Def D = (L.D == Def::D && !LL->isSummary()) ? Def::D : Def::P;
      Llocs.push_back({LL, D});
    }
    for (const LocDef &R : RhsStorage) {
      const Location *RL = applyPath(Locs, R.Loc, P);
      for (const LocDef &T : S.targetsOf(RL, Locs))
        Rlocs.push_back({T.Loc, meet(R.D, T.D)});
    }
    applyAssignRule(S, normalizeLocDefs(std::move(Llocs)),
                    normalizeLocDefs(std::move(Rlocs)));
  }
}

//===----------------------------------------------------------------------===//
// Compositional rules
//===----------------------------------------------------------------------===//

FlowState BodyKernel::process(const Stmt *S, OptSet In, IGNode *Ign) {
  if (!S || !In)
    return {};
  if (Opts.LiveStmts) {
    const std::vector<uint8_t> &Live = *Opts.LiveStmts;
    unsigned Id = S->id();
    if (Id < Live.size() && !Live[Id]) {
      // Demand-driven pruning: a dead statement is an identity transfer.
      // The demand engine only marks a statement dead when its effect
      // cannot touch the query's relevant roots, so passing the input
      // through unchanged reproduces the exhaustive result's projection.
      ++C.StmtSkips;
      FlowState FS;
      FS.Normal = std::move(In);
      return FS;
    }
  }
  ++C.StmtVisits;
  switch (S->kind()) {
  case Stmt::Kind::Block:
    return processBlock(castStmt<BlockStmt>(S), std::move(In), Ign);
  case Stmt::Kind::If:
    return processIf(castStmt<IfStmt>(S), std::move(In), Ign);
  case Stmt::Kind::Loop:
    return processLoop(castStmt<LoopStmt>(S), std::move(In), Ign);
  case Stmt::Kind::Switch:
    return processSwitch(castStmt<SwitchStmt>(S), std::move(In), Ign);
  case Stmt::Kind::Assign:
    return processAssign(castStmt<AssignStmt>(S), std::move(In), Ign);
  case Stmt::Kind::Call: {
    E.recordStmtIn(S, In);
    const auto *CS = castStmt<CallStmt>(S);
    FlowState FS;
    FS.Normal = E.processCall(CS->Call, nullptr, std::move(In), Ign);
    return FS;
  }
  case Stmt::Kind::Return:
    return processReturn(castStmt<ReturnStmt>(S), std::move(In), Ign);
  case Stmt::Kind::Break: {
    FlowState FS;
    FS.Brk = std::move(In);
    return FS;
  }
  case Stmt::Kind::Continue: {
    FlowState FS;
    FS.Cont = std::move(In);
    return FS;
  }
  }
  return {};
}

FlowState BodyKernel::processBlock(const BlockStmt *B, OptSet In,
                                   IGNode *Ign) {
  FlowState Acc;
  Acc.Normal = std::move(In);
  for (const Stmt *S : B->Body) {
    if (!Acc.Normal)
      break; // the rest of the block is unreachable
    FlowState FS = process(S, std::move(Acc.Normal), Ign);
    Acc.Normal = std::move(FS.Normal);
    mergeInto(Acc.Brk, FS.Brk);
    mergeInto(Acc.Cont, FS.Cont);
    mergeInto(Acc.Ret, FS.Ret);
  }
  return Acc;
}

FlowState BodyKernel::processIf(const IfStmt *I, OptSet In, IGNode *Ign) {
  E.recordStmtIn(I, In);
  FlowState Th = process(I->Then, In, Ign);
  FlowState El;
  if (I->Else)
    El = process(I->Else, In, Ign);
  else
    El.Normal = In;

  FlowState Out;
  Out.Normal = std::move(Th.Normal);
  mergeInto(Out.Normal, El.Normal);
  Out.Brk = std::move(Th.Brk);
  mergeInto(Out.Brk, El.Brk);
  Out.Cont = std::move(Th.Cont);
  mergeInto(Out.Cont, El.Cont);
  Out.Ret = std::move(Th.Ret);
  mergeInto(Out.Ret, El.Ret);
  return Out;
}

FlowState BodyKernel::processLoop(const LoopStmt *L, OptSet In, IGNode *Ign) {
  E.recordStmtIn(L, In);
  // Figure 1's while rule: generalize the loop-head state until a fixed
  // point, accumulating the abrupt-exit channels across iterations.
  OptSet X = In;
  OptSet BreakAcc, RetAcc;
  OptSet LastTrailOut; // state after body+trailer of the last iteration
  unsigned Iters = 0;
  unsigned Passes = 0;
  while (true) {
    ++C.LoopIterations;
    ++Passes;
    OptSet Prev = X;
    FlowState B = process(L->Body, X, Ign);
    mergeInto(BreakAcc, B.Brk);
    mergeInto(RetAcc, B.Ret);
    OptSet TIn = std::move(B.Normal);
    mergeInto(TIn, B.Cont);
    OptSet TOut;
    if (L->Trailer) {
      FlowState T = process(L->Trailer, std::move(TIn), Ign);
      mergeInto(RetAcc, T.Ret); // trailers are straight-line code
      TOut = std::move(T.Normal);
    } else {
      TOut = std::move(TIn);
    }
    LastTrailOut = TOut;
    mergeInto(X, TOut);
    if ((!X && !Prev) || (X && Prev && *X == *Prev))
      break;
    // Governed cut: a run well past its deadline stops generalizing the
    // loop head. The partial state is kept but fully demoted — none of
    // the un-reached iterations' kills is trusted as definite.
    if (Meter && Passes >= 2 && Meter->hardDeadline()) {
      if (X)
        X->demoteAll();
      if (BreakAcc)
        BreakAcc->demoteAll();
      if (RetAcc)
        RetAcc->demoteAll();
      if (LastTrailOut)
        LastTrailOut->demoteAll();
      E.recordDegradation(support::LimitKind::Deadline, "loop fixed point",
                          "cut short past the hard deadline before "
                          "convergence; definiteness dropped");
      break;
    }
    if (++Iters > Opts.MaxLoopIterations) {
      ++C.LoopLimitHits;
      E.warnOnce(ownerName(Ign), "loop-fixpoint",
                 "loop fixed point did not converge within the iteration "
                 "limit; results remain safe but may be imprecise");
      break;
    }
  }
  if (HLoopIters)
    HLoopIters->record(Passes);

  FlowState Out;
  if (L->PostTest)
    Out.Normal = L->CondVar ? LastTrailOut : OptSet();
  else
    Out.Normal = L->CondVar ? X : OptSet();
  mergeInto(Out.Normal, BreakAcc);
  Out.Ret = std::move(RetAcc);
  return Out;
}

FlowState BodyKernel::processSwitch(const SwitchStmt *Sw, OptSet In,
                                    IGNode *Ign) {
  E.recordStmtIn(Sw, In);
  FlowState Out;
  OptSet Fall; // flows from one case into the next
  for (const SwitchStmt::Case &Case : Sw->Cases) {
    OptSet Entry = In;
    mergeInto(Entry, Fall);
    FlowState CS;
    CS.Normal = std::move(Entry);
    for (const Stmt *S : Case.Body) {
      if (!CS.Normal)
        break;
      FlowState FS = process(S, std::move(CS.Normal), Ign);
      CS.Normal = std::move(FS.Normal);
      mergeInto(CS.Brk, FS.Brk);
      mergeInto(CS.Cont, FS.Cont);
      mergeInto(CS.Ret, FS.Ret);
    }
    Fall = std::move(CS.Normal);
    mergeInto(Out.Brk, CS.Brk);
    mergeInto(Out.Cont, CS.Cont);
    mergeInto(Out.Ret, CS.Ret);
  }
  Out.Normal = std::move(Fall);
  if (!Sw->hasDefault())
    mergeInto(Out.Normal, In); // no case may match
  mergeInto(Out.Normal, Out.Brk);
  Out.Brk.reset(); // breaks bind to the switch
  return Out;
}

FlowState BodyKernel::processAssign(const AssignStmt *A, OptSet In,
                                    IGNode *Ign) {
  E.recordStmtIn(A, In);
  FlowState FS;
  PointsToSet S = std::move(*In);
  const cf::Type *LhsTy = A->Lhs.Ty;

  // Calls must be evaluated for their side effects whatever the lhs is.
  if (A->RK == AssignStmt::RhsKind::Call) {
    const Reference *LhsRef =
        (LhsTy && (LhsTy->isPointerBearing() || LhsTy->isRecord()))
            ? &A->Lhs
            : nullptr;
    FS.Normal = E.processCall(A->Call, LhsRef, OptSet(std::move(S)), Ign);
    return FS;
  }

  if (!LhsTy || (!LhsTy->isPointerBearing() && !LhsTy->isRecord() &&
                 !LhsTy->isArray())) {
    FS.Normal = std::move(S);
    return FS; // not a pointer assignment (Figure 1's first case)
  }

  if (LhsTy->isRecord() || LhsTy->isArray()) {
    // Aggregate copy: s1 = s2 decomposes into pointer components.
    if (A->RK == AssignStmt::RhsKind::Operand && A->A.isRef() &&
        LhsTy->isPointerBearing()) {
      std::vector<LocDef> LhsStorage = Eval.lvalLocations(A->Lhs, S);
      std::vector<LocDef> RhsStorage = Eval.refLocations(A->A.Ref, S);
      applyStructCopy(S, LhsStorage, RhsStorage, LhsTy);
    }
    FS.Normal = std::move(S);
    return FS;
  }

  // Scalar pointer assignment.
  std::vector<LocDef> Rlocs;
  switch (A->RK) {
  case AssignStmt::RhsKind::Operand:
    Rlocs = Eval.operandRLocations(A->A, S);
    break;
  case AssignStmt::RhsKind::Binary:
    Rlocs = Eval.binaryRLocations(A->A, A->BOp, A->B, S);
    break;
  case AssignStmt::RhsKind::Unary:
    Rlocs.clear(); // unary ops never produce pointers
    break;
  case AssignStmt::RhsKind::Alloc:
    Rlocs = {{Locs.heap(), Def::P}}; // Table 1's malloc() row
    break;
  case AssignStmt::RhsKind::Call:
    // Handled at the top of this function; reaching here means the
    // lowering produced an inconsistent statement. Recover with an
    // unknown right-hand side instead of dying on malformed input.
    E.warnOnce(ownerName(Ign), "assign-call-rhs",
               "internal: call rhs reached the scalar assignment path; "
               "right-hand side treated as unknown");
    Rlocs.clear();
    break;
  }

  std::vector<LocDef> Llocs = Eval.lvalLocations(A->Lhs, S);
  applyAssignRule(S, Llocs, Rlocs);
  FS.Normal = std::move(S);
  return FS;
}

FlowState BodyKernel::processReturn(const ReturnStmt *R, OptSet In,
                                    IGNode *Ign) {
  E.recordStmtIn(R, In);
  PointsToSet S = std::move(*In);
  const cf::FunctionDecl *F = Ign->function();
  if (R->Value && F && F->returnType()->isRecord()) {
    // Struct return: copy the aggregate into retval component-wise.
    if (R->Value->isRef() && F->returnType()->isPointerBearing()) {
      const Location *Ret = Locs.get(Locs.retval(F));
      std::vector<LocDef> RhsStorage = Eval.refLocations(R->Value->Ref, S);
      applyStructCopy(S, {{Ret, Def::D}}, RhsStorage, F->returnType());
    }
  } else if (R->Value && F && F->returnType()->isPointerBearing()) {
    const Location *Ret = Locs.get(Locs.retval(F));
    std::vector<LocDef> Rlocs = Eval.operandRLocations(*R->Value, S);
    applyAssignRule(S, {{Ret, Def::D}}, Rlocs);
  }
  FlowState FS;
  FS.Ret = std::move(S);
  return FS;
}
