//===- LRLocations.cpp - Table 1: L- and R-location sets --------------------===//

#include "pointsto/LRLocations.h"

#include <algorithm>
#include <cassert>

using namespace mcpta;
using namespace mcpta::pta;
using namespace mcpta::simple;
using namespace mcpta::cfront;

std::vector<LocDef> mcpta::pta::normalizeLocDefs(std::vector<LocDef> Set) {
  std::sort(Set.begin(), Set.end(), [](const LocDef &A, const LocDef &B) {
    if (A.Loc != B.Loc)
      return A.Loc->id() < B.Loc->id();
    return A.D < B.D; // D before P
  });
  std::vector<LocDef> Out;
  for (const LocDef &LD : Set) {
    if (!Out.empty() && Out.back().Loc == LD.Loc)
      continue; // keep the stronger (D sorts first)
    Out.push_back(LD);
  }
  if (Out.size() > 1)
    for (LocDef &LD : Out)
      LD.D = Def::P;
  return Out;
}

void LREvaluator::applyIndexToTarget(const Location *L, IndexKind IK, Def D,
                                     std::vector<LocDef> &Out) {
  // Shift semantics: the location is a *cell* a pointer designates, and
  // the index moves across its siblings, staying within the underlying
  // object (the paper's pointer-arithmetic flag, setting (1)):
  //   - from the head element of an array, positive offsets land in the
  //     tail; unknown offsets cover both;
  //   - from the tail, anywhere in the tail;
  //   - from a whole-array cell (p = &arr) or a scalar, the object
  //     itself.
  if (L->isHeap() || L->isNull()) {
    Out.push_back({L, D});
    return;
  }
  if (IK == IndexKind::Zero) {
    Out.push_back({L, D});
    return;
  }
  bool AtHead =
      !L->path().empty() && L->path().back().K == PathElem::Kind::Head;
  const Type *Ty = L->type();
  bool WholeArray = Ty && Ty->isArray();
  if (AtHead && !WholeArray) {
    if (IK == IndexKind::Unknown)
      Out.push_back({L, Def::P});
    Out.push_back({Locs.headToTail(L), Def::P});
    return;
  }
  // Head-of-array-of-arrays cells shift across the outer dimension.
  if (AtHead && WholeArray) {
    if (IK == IndexKind::Unknown)
      Out.push_back({L, Def::P});
    Out.push_back({Locs.headToTail(L), Def::P});
    return;
  }
  Out.push_back({L, Def::P});
}

void LREvaluator::selectElement(const Location *L, IndexKind IK, Def D,
                                std::vector<LocDef> &Out) {
  // Select semantics: the location is an aggregate named directly (an
  // array lvalue); the index picks its head/tail element.
  if (L->isHeap() || L->isNull()) {
    Out.push_back({L, D});
    return;
  }
  const Type *Ty = L->type();
  if (!Ty || !Ty->isArray()) {
    // Type information was lost (casts): be conservative, stay put.
    applyIndexToTarget(L, IK, D, Out);
    return;
  }
  switch (IK) {
  case IndexKind::Zero:
    Out.push_back({Locs.withElem(L, /*Head=*/true), D});
    return;
  case IndexKind::Positive:
    Out.push_back({Locs.withElem(L, /*Head=*/false), Def::P});
    return;
  case IndexKind::Unknown:
    Out.push_back({Locs.withElem(L, /*Head=*/true), Def::P});
    Out.push_back({Locs.withElem(L, /*Head=*/false), Def::P});
    return;
  }
}

void LREvaluator::applyAccessor(std::vector<LocDef> &Set, const Accessor &A) {
  std::vector<LocDef> Next;
  for (const LocDef &LD : Set) {
    if (A.K == Accessor::Kind::Field) {
      Next.push_back({Locs.withField(LD.Loc, A.Field), LD.D});
      continue;
    }
    if (A.IsShift)
      applyIndexToTarget(LD.Loc, A.Index, LD.D, Next);
    else
      selectElement(LD.Loc, A.Index, LD.D, Next);
  }
  Set = std::move(Next);
}

std::vector<LocDef> LREvaluator::refLocations(const Reference &Ref,
                                              const PointsToSet &S) {
  assert(Ref.isValid() && "reference has no base variable");
  std::vector<LocDef> Set;
  const Location *Base = Locs.varLoc(Ref.Base);
  if (Ref.Deref) {
    // Dereference reads the base pointer's targets from S. NULL targets
    // are skipped: execution dereferencing NULL does not reach the
    // statement's continuation (the paper makes the same assumption in
    // Sec. 6).
    for (const LocDef &T : S.targetsOf(Base, Locs)) {
      if (T.Loc->isNull())
        continue;
      Set.push_back(T);
    }
  } else {
    Set.push_back({Base, Def::D});
  }
  for (const Accessor &A : Ref.Path)
    applyAccessor(Set, A);
  return normalizeLocDefs(std::move(Set));
}

std::vector<LocDef> LREvaluator::lvalLocations(const Reference &Ref,
                                               const PointsToSet &S) {
  assert(!Ref.AddrOf && "address values are not assignable");
  std::vector<LocDef> Set = refLocations(Ref, S);
  // Summary locations are never strong-update targets.
  for (LocDef &LD : Set)
    if (LD.Loc->isSummary())
      LD.D = Def::P;
  return Set;
}

std::vector<LocDef> LREvaluator::rvalLocations(const Reference &Ref,
                                               const PointsToSet &S) {
  std::vector<LocDef> Set = refLocations(Ref, S);
  if (Ref.AddrOf) {
    // &ref: the value *is* the set of addresses.
    return Set;
  }
  // Read the pointer stored at each location: one more hop through S.
  std::vector<LocDef> Out;
  for (const LocDef &LD : Set)
    for (const LocDef &T : S.targetsOf(LD.Loc, Locs))
      Out.push_back({T.Loc, meet(LD.D, T.D)});
  return normalizeLocDefs(std::move(Out));
}

std::vector<LocDef> LREvaluator::operandRLocations(const Operand &Op,
                                                   const PointsToSet &S) {
  switch (Op.K) {
  case Operand::Kind::Ref:
    return rvalLocations(Op.Ref, S);
  case Operand::Kind::IntConst:
  case Operand::Kind::FloatConst:
    return {};
  case Operand::Kind::NullConst:
    return {{Locs.null(), Def::D}};
  case Operand::Kind::StringConst: {
    const Entity *E = Locs.stringLit(Op.StringId, Op.Ty);
    return {{Locs.withElem(Locs.get(E), /*Head=*/true), Def::D}};
  }
  case Operand::Kind::FunctionAddr:
    return {{Locs.fnLoc(Op.Fn), Def::D}};
  }
  return {};
}

std::vector<LocDef> LREvaluator::binaryRLocations(const Operand &A,
                                                  BinaryOp Op,
                                                  const Operand &B,
                                                  const PointsToSet &S) {
  // Only additive operators can produce pointers from pointers.
  if (Op != BinaryOp::Add && Op != BinaryOp::Sub)
    return {};

  auto IsPointerish = [](const Operand &O) {
    return O.Ty && (O.Ty->isPointer() || O.Ty->isArray());
  };
  const Operand *Ptr = nullptr;
  const Operand *Idx = nullptr;
  if (IsPointerish(A)) {
    Ptr = &A;
    Idx = &B;
  } else if (IsPointerish(B) && Op == BinaryOp::Add) {
    Ptr = &B;
    Idx = &A;
  } else {
    return {};
  }
  if (IsPointerish(A) && IsPointerish(B) && Op == BinaryOp::Sub)
    return {}; // ptr - ptr is an integer

  std::vector<LocDef> Targets = operandRLocations(*Ptr, S);

  // Classify the offset.
  IndexKind IK = IndexKind::Unknown;
  if (Idx->K == Operand::Kind::IntConst) {
    if (Idx->IntValue == 0)
      IK = IndexKind::Zero;
    else if (Idx->IntValue > 0 && Op == BinaryOp::Add)
      IK = IndexKind::Positive;
    else
      IK = IndexKind::Unknown; // negative or subtracted offset
  }
  if (Op == BinaryOp::Sub && IK != IndexKind::Zero)
    IK = IndexKind::Unknown;

  if (IK == IndexKind::Zero)
    return Targets;

  std::vector<LocDef> Out;
  for (const LocDef &LD : Targets) {
    if (LD.Loc->isNull())
      continue;
    // Subtraction can move from tail back to head.
    if (Op == BinaryOp::Sub) {
      bool AtTail = !LD.Loc->path().empty() &&
                    LD.Loc->path().back().K == PathElem::Kind::Tail;
      if (AtTail) {
        std::vector<PathElem> Path = LD.Loc->path();
        Path.back() = PathElem::head();
        Out.push_back({Locs.get(LD.Loc->root(), Path), Def::P});
        Out.push_back({LD.Loc, Def::P});
        continue;
      }
      Out.push_back({LD.Loc, Def::P});
      continue;
    }
    applyIndexToTarget(LD.Loc, IK, LD.D, Out);
  }
  return normalizeLocDefs(std::move(Out));
}
