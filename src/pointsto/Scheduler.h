//===- Scheduler.h - Parallel fixed-point scheduler -------------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler layer of the parallel fixed-point engine (see
/// docs/PARALLEL.md): sits between the sequential body-transfer kernel
/// (BodyKernel.h) and the work-stealing pool (support/ThreadPool.h).
/// Two pieces:
///
///  - Scheduler: a dependency-tracked dispatcher of work units. A unit
///    becomes ready when every unit it depends on has finished —
///    exactly the invocation-graph discipline where sibling subtrees
///    whose IN maps are computed are independent — and ready units are
///    dispatched onto the pool in submission order. The batch driver
///    schedules one unit per translation unit; tests exercise ordering,
///    exception propagation, and the empty/degenerate edge cases.
///
///  - StmtInFolder: offloads the per-statement-visit StmtIn fold — the
///    `StmtIn[id] ← merge(StmtIn[id], IN)` accumulation that dominates
///    large runs — from the analysis thread onto the pool. Records are
///    sharded by statement id; each shard drains FIFO under exclusive
///    claim, so the merges of one slot are applied in exactly the order
///    the sequential engine would have applied them (and Merge is a
///    commutative, associative lattice join besides — see PARALLEL.md
///    for the two-layer determinism argument). finish() is the barrier
///    the analyzer crosses before the Result is read.
///
/// ParCounters aggregates the pta.par.* observability surface
/// (docs/OBSERVABILITY.md).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_POINTSTO_SCHEDULER_H
#define MCPTA_POINTSTO_SCHEDULER_H

#include "pointsto/BodyKernel.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace mcpta {
namespace pta {

/// The pta.par.* counter block. Relaxed atomics: worker threads bump
/// them concurrently; the analyzer publishes one consistent-enough
/// reading after the final barrier.
struct ParCounters {
  std::atomic<uint64_t> Tasks{0};        ///< work units dispatched
  std::atomic<uint64_t> FoldRecords{0};  ///< StmtIn merges routed via pool
  std::atomic<uint64_t> BarrierWaits{0}; ///< finish()/run() calls that blocked
};

/// Dependency-tracked dispatcher over a work-stealing pool.
class Scheduler {
public:
  using UnitId = size_t;

  /// \p Pool is not owned; an inline (1-thread) pool degrades run() to
  /// sequential in-order execution.
  explicit Scheduler(support::ThreadPool &Pool) : Pool(Pool) {}

  /// Registers a unit. \p Deps are UnitIds returned by earlier addUnit
  /// calls; the unit runs only after all of them finished. Units with
  /// no dependencies are dispatched in registration order.
  UnitId addUnit(std::function<void()> Work, std::vector<UnitId> Deps = {});

  /// Dispatches every registered unit respecting dependencies, blocks
  /// until all have finished, then rethrows the first unit exception if
  /// any. A dependency cycle is reported as std::logic_error. The
  /// scheduler is single-shot: run() consumes the registered units.
  void run();

  const ParCounters &counters() const { return Par; }
  support::ThreadPool &pool() { return Pool; }

private:
  struct Unit {
    std::function<void()> Work;
    std::vector<UnitId> Dependents;
    std::atomic<unsigned> PendingDeps{0};
    /// Registered dependency count. run() seeds only units that never
    /// had dependencies: a dependent whose deps all finished during the
    /// seeding loop has PendingDeps == 0 too, but its last-finishing
    /// dependency already dispatched it (the fetch_sub handoff) —
    /// seeding by the live counter would run it twice.
    unsigned InitialDeps = 0;
  };

  void dispatch(UnitId Id);

  support::ThreadPool &Pool;
  std::vector<std::unique_ptr<Unit>> Units;
  std::atomic<uint64_t> Executed{0};
  ParCounters Par;
};

/// Pool-offloaded accumulator for the per-statement IN sets.
///
/// The analysis thread calls record() at every statement visit; worker
/// threads drain shards and apply the merges into \p Slots. Shard
/// claiming guarantees at most one drainer per shard, so each slot sees
/// its merges FIFO — the sequential fold order. finish() blocks until
/// every queued record is folded; afterwards record() may be used again
/// (the incremental engine re-enters the analyzer on the same Result).
class StmtInFolder {
public:
  /// \p Slots must outlive the folder and must not be resized between
  /// record() and finish() (the analyzer sizes it once, up front).
  StmtInFolder(support::ThreadPool &Pool, std::vector<OptSet> &Slots,
               ParCounters &Par, unsigned NumShards = 32);

  /// Queues `Slots[StmtId] ← merge(Slots[StmtId], In)`. Called from the
  /// analysis thread only. The set is shared CoW, not deep-copied.
  void record(unsigned StmtId, const PointsToSet &In);

  /// Barrier: returns once every queued record has been folded in AND
  /// every drain task has exited. The second half is what makes it safe
  /// to destroy the folder right after: a drain task touches the shard
  /// and the finish mutex after folding its last record, so waiting on
  /// the record count alone would race task teardown.
  void finish();

private:
  struct Shard {
    std::mutex Mu;
    std::deque<std::pair<unsigned, PointsToSet>> Q;
    bool Scheduled = false; ///< a drain task is live for this shard
  };

  void drain(Shard &S);

  support::ThreadPool &Pool;
  std::vector<OptSet> &Slots;
  ParCounters &Par;
  std::vector<std::unique_ptr<Shard>> Shards;

  std::mutex FinishMu;
  std::condition_variable FinishCv;
  std::atomic<uint64_t> PendingRecords{0};
  /// Drain tasks submitted but not yet exited. A task's final action is
  /// decrementing this under FinishMu; once finish() observes 0 under
  /// the same mutex, no task will touch the folder again.
  std::atomic<uint64_t> ActiveDrains{0};
};

} // namespace pta
} // namespace mcpta

#endif // MCPTA_POINTSTO_SCHEDULER_H
