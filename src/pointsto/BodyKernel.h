//===- BodyKernel.h - Sequential body-transfer kernel -----------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The body-transfer kernel: the compositional intraprocedural rules of
/// Figure 1 (kill / change-to-possible / gen, if-merge, loop fixed
/// points, switch fall-through, and the abrupt-completion channels of
/// [13]), factored out of the interprocedural driver so the scheduler
/// layer (Scheduler.h) can treat "IN map + body → OUT map" as a pure
/// unit of work.
///
/// Purity contract: the kernel holds no global mutable state. Every
/// effect beyond the returned FlowState goes through one of
///  - the Env callback interface (interprocedural evaluation of calls,
///    per-statement IN recording, warnings, degradation records) — the
///    seam the driver plugs its memo tables and telemetry into;
///  - the HotCounters block the caller passes in (plain counters, owned
///    by the caller, one block per analysis run);
///  - the LocationTable (interning is append-only and confined to the
///    analysis thread; see docs/PARALLEL.md).
/// Given the same IN map, body, and Env answers, the kernel computes
/// the same OUT map — which is the determinism argument the parallel
/// engine rests on.
///
/// The assignment-rule helpers (applyAssignRule, applyStructCopy,
/// pointerSuffixPaths, applyPath) are public: the driver reuses them
/// for return-value translation and the extern-call models.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_POINTSTO_BODYKERNEL_H
#define MCPTA_POINTSTO_BODYKERNEL_H

#include "ig/InvocationGraph.h"
#include "pointsto/Analyzer.h"
#include "pointsto/LRLocations.h"
#include "pointsto/PointsToSet.h"
#include "simple/SimpleIR.h"
#include "support/Limits.h"
#include "support/Telemetry.h"

#include <optional>
#include <string>
#include <vector>

namespace mcpta {
namespace pta {

using OptSet = std::optional<PointsToSet>;

/// Bottom-aware merge: merging with an unreachable state keeps the other
/// operand unchanged (Bottom is the identity of Merge, Figure 4).
inline void mergeInto(OptSet &A, const OptSet &B) {
  if (!B)
    return;
  if (!A) {
    A = *B;
    return;
  }
  A->mergeWith(*B);
}

inline bool subsetOfOpt(const OptSet &A, const OptSet &B) {
  if (!A)
    return true; // bottom is contained in everything
  if (!B)
    return false;
  return A->subsetOf(*B);
}

/// Flow state threaded through the compositional rules: the normal
/// continuation plus the abrupt-completion channels of [13].
struct FlowState {
  OptSet Normal;
  OptSet Brk;
  OptSet Cont;
  OptSet Ret;
};

/// Unified hot-path counters. One plain struct replaces the old ad-hoc
/// ++Res.X plumbing; Result's legacy fields and the telemetry counters
/// are both published from here once, in publishTelemetry(). Mutated
/// only from the analysis thread (the kernel and the driver); the
/// parallel engine's worker threads never touch it.
struct HotCounters {
  uint64_t BodyAnalyses = 0;
  uint64_t MemoHits = 0;
  uint64_t MemoMisses = 0;
  uint64_t LoopIterations = 0;
  uint64_t PendingEnqueues = 0;
  uint64_t FixpointRestarts = 0;
  uint64_t IndirectCallsResolved = 0;
  uint64_t IndirectTargetsTotal = 0;
  uint64_t ExternCalls = 0;
  /// process() dispatches that ran a statement's transfer function, and
  /// dispatches short-circuited by Options::LiveStmts. Their sum is the
  /// statement coverage of the run; the demand engine's visited-statement
  /// ratio is its StmtVisits over the exhaustive run's.
  uint64_t StmtVisits = 0;
  uint64_t StmtSkips = 0;
  /// Loops whose fixed point was stopped by MaxLoopIterations.
  uint64_t LoopLimitHits = 0;
  /// Degradation occurrences per LimitKind (pta.degraded.*).
  uint64_t DegradedByKind[support::NumLimitKinds] = {};
};

class BodyKernel {
public:
  /// The interprocedural seam: everything the compositional rules need
  /// from the layer above. The driver (AnalyzerImpl) implements it with
  /// its memo tables, budget governance, and warning dedup; tests can
  /// substitute a stub to exercise the kernel in isolation.
  class Env {
  public:
    virtual ~Env() = default;
    /// Figure 4/5 call evaluation: caller-domain IN → caller-domain OUT
    /// (Bottom while a recursion approximation is pending, or for a
    /// NoReturn callee).
    virtual OptSet processCall(const simple::CallInfo &CI,
                               const simple::Reference *LhsRef, OptSet In,
                               IGNode *Ign) = 0;
    /// Per-statement IN recording (budget tick + StmtIn fold).
    virtual void recordStmtIn(const simple::Stmt *S, const OptSet &In) = 0;
    /// \p Owner is the function whose evaluation raised the warning.
    virtual void warnOnce(const cfront::FunctionDecl *Owner,
                          const std::string &Key, const std::string &Msg) = 0;
    /// Records a budget-triggered degradation event.
    virtual void recordDegradation(support::LimitKind K,
                                   const std::string &Context,
                                   const std::string &Action) = 0;
  };

  /// \p Meter may be null (ungoverned run); \p HLoopIters may be null
  /// (telemetry off). Neither is owned.
  BodyKernel(const Analyzer::Options &Opts, LocationTable &Locs,
             LREvaluator &Eval, support::BudgetMeter *Meter, Env &E,
             HotCounters &C, support::Histogram *HLoopIters)
      : Opts(Opts), Locs(Locs), Eval(Eval), Meter(Meter), E(E), C(C),
        HLoopIters(HLoopIters) {}

  /// The transfer function: IN map + statement (tree) → flow state.
  FlowState process(const simple::Stmt *S, OptSet In, IGNode *Ign);

  /// Applies the basic kill/change/gen rule of Figure 1.
  void applyAssignRule(PointsToSet &S, const std::vector<LocDef> &Llocs,
                       const std::vector<LocDef> &Rlocs);

  /// Structure assignment: broken into per-pointer-component assignments
  /// (the paper's note below Figure 1). \p RhsStorage are the locations
  /// of the source aggregate.
  void applyStructCopy(PointsToSet &S, const std::vector<LocDef> &LhsStorage,
                       const std::vector<LocDef> &RhsStorage,
                       const cfront::Type *Ty);

  /// Enumerates the relative paths of all pointer components of a type.
  static void pointerSuffixPaths(const cfront::Type *Ty,
                                 std::vector<PathElem> &Prefix,
                                 std::vector<std::vector<PathElem>> &Out);

  static const Location *applyPath(LocationTable &Locs, const Location *L,
                                   const std::vector<PathElem> &Path);

private:
  FlowState processBlock(const simple::BlockStmt *B, OptSet In, IGNode *Ign);
  FlowState processIf(const simple::IfStmt *I, OptSet In, IGNode *Ign);
  FlowState processLoop(const simple::LoopStmt *L, OptSet In, IGNode *Ign);
  FlowState processSwitch(const simple::SwitchStmt *Sw, OptSet In,
                          IGNode *Ign);
  FlowState processAssign(const simple::AssignStmt *A, OptSet In, IGNode *Ign);
  FlowState processReturn(const simple::ReturnStmt *R, OptSet In, IGNode *Ign);

  const Analyzer::Options &Opts;
  LocationTable &Locs;
  LREvaluator &Eval;
  support::BudgetMeter *Meter;
  Env &E;
  HotCounters &C;
  support::Histogram *HLoopIters;
};

} // namespace pta
} // namespace mcpta

#endif // MCPTA_POINTSTO_BODYKERNEL_H
