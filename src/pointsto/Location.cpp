//===- Location.cpp - Abstract stack locations ------------------------------===//

#include "pointsto/Location.h"

#include <cassert>

using namespace mcpta;
using namespace mcpta::pta;
using namespace mcpta::cfront;

bool Location::isSummary() const {
  if (Root->isHeap())
    return true;
  if (Root->isSymbolic() && Root->isCollapsed())
    return true;
  for (const PathElem &E : Path)
    if (E.K == PathElem::Kind::Tail)
      return true;
  return false;
}

std::string Location::str() const {
  std::string S = Root->name();
  for (const PathElem &E : Path) {
    switch (E.K) {
    case PathElem::Kind::Field:
      S += ".";
      S += E.Field->name();
      break;
    case PathElem::Kind::Head:
      S += "[0]";
      break;
    case PathElem::Kind::Tail:
      S += "[1..]";
      break;
    }
  }
  return S;
}

Entity *LocationTable::makeEntity() {
  Entities.push_back(std::unique_ptr<Entity>(new Entity()));
  return Entities.back().get();
}

const Entity *LocationTable::variable(const VarDecl *V) {
  auto It = VarEntities.find(V);
  if (It != VarEntities.end())
    return It->second;
  Entity *E = makeEntity();
  E->K = Entity::Kind::Variable;
  E->Name = V->name();
  E->Ty = V->type();
  E->Var = V;
  E->Owner = V->isGlobal() ? nullptr : V->owner();
  VarEntities[V] = E;
  return E;
}

const Entity *LocationTable::retval(const FunctionDecl *F) {
  auto It = RetvalEntities.find(F);
  if (It != RetvalEntities.end())
    return It->second;
  Entity *E = makeEntity();
  E->K = Entity::Kind::Retval;
  E->Name = "retval$" + F->name();
  E->Ty = F->returnType();
  E->Owner = F;
  RetvalEntities[F] = E;
  return E;
}

const Entity *LocationTable::function(const FunctionDecl *F) {
  auto It = FnEntities.find(F);
  if (It != FnEntities.end())
    return It->second;
  Entity *E = makeEntity();
  E->K = Entity::Kind::Function;
  E->Name = F->name();
  E->Ty = F->type();
  E->Fn = F;
  FnEntities[F] = E;
  return E;
}

const Entity *LocationTable::stringLit(unsigned Id, const Type *Ty) {
  auto It = StringEntities.find(Id);
  if (It != StringEntities.end())
    return It->second;
  Entity *E = makeEntity();
  E->K = Entity::Kind::String;
  E->Name = "str$" + std::to_string(Id);
  E->Ty = Ty;
  StringEntities[Id] = E;
  return E;
}

const Entity *LocationTable::heapEntity() {
  if (!Heap) {
    Entity *E = makeEntity();
    E->K = Entity::Kind::Heap;
    E->Name = "heap";
    Heap = E;
  }
  return Heap;
}

const Entity *LocationTable::nullEntity() {
  if (!Null) {
    Entity *E = makeEntity();
    E->K = Entity::Kind::Null;
    E->Name = "NULL";
    Null = E;
  }
  return Null;
}

/// Type of the storage reached by dereferencing a location of type Ty,
/// or null if not a pointer.
static const Type *pointeeType(const Type *Ty) {
  if (!Ty)
    return nullptr;
  if (const auto *PT = dynCast<PointerType>(Ty))
    return PT->pointee();
  return nullptr;
}

const Entity *LocationTable::symbolic(const FunctionDecl *Frame,
                                      const Location *Parent) {
  // K-limit: beyond SymbolicLevelLimit levels of indirection the chain
  // folds into the last symbolic, which then summarizes every deeper
  // invisible location. Keeps the location universe finite (and the
  // recursion fixed point terminating) on recursive stack structures.
  const Entity *PRoot = Parent->root();
  if (PRoot->isSymbolic() && PRoot->symbolicLevel() >= SymbolicLevelLimit) {
    const_cast<Entity *>(PRoot)->Collapsed = true;
    return PRoot;
  }

  auto Key = std::make_pair(Frame, Parent);
  auto It = Symbolics.find(Key);
  if (It != Symbolics.end())
    return It->second;

  Entity *E = makeEntity();
  E->K = Entity::Kind::Symbolic;
  E->Owner = Frame;
  E->SymParent = Parent;

  // Compute level and base spelling. For a pure pointer chain rooted at
  // x this yields the paper's 1_x, 2_x, ...; path components extend the
  // base (e.g. 2_x.next).
  std::string Base;
  unsigned Level = 1;
  const Entity *Root = Parent->root();
  if (Root->isSymbolic()) {
    Level = Root->symbolicLevel() + 1;
    Base = Root->SymBase;
  } else {
    Base = Root->name();
  }
  for (const PathElem &PE : Parent->path()) {
    switch (PE.K) {
    case PathElem::Kind::Field:
      Base += "." + PE.Field->name();
      break;
    case PathElem::Kind::Head:
      Base += "[0]";
      break;
    case PathElem::Kind::Tail:
      Base += "[1..]";
      break;
    }
  }
  E->SymLevel = Level;
  E->SymBase = Base;
  E->Name = std::to_string(Level) + "_" + Base;
  E->Ty = pointeeType(Parent->type());

  Symbolics[Key] = E;
  return E;
}

const Location *LocationTable::get(const Entity *Root,
                                   std::vector<PathElem> Path) {
  auto Key = std::make_pair(Root, Path);
  auto It = LocationMap.find(Key);
  if (It != LocationMap.end())
    return It->second;

  Locations.push_back(std::unique_ptr<Location>(new Location()));
  Location *L = Locations.back().get();
  L->Id = static_cast<uint32_t>(LocationsById.size());
  L->Root = Root;
  L->Path = std::move(Path);

  // Compute the location's type by walking the path from the root type.
  const Type *Ty = Root->type();
  for (const PathElem &E : L->Path) {
    if (!Ty)
      break;
    switch (E.K) {
    case PathElem::Kind::Field:
      Ty = E.Field->type();
      break;
    case PathElem::Kind::Head:
    case PathElem::Kind::Tail:
      if (const auto *AT = dynCast<ArrayType>(Ty))
        Ty = AT->element();
      else
        Ty = nullptr; // index through a cast; type information is lost
      break;
    }
  }
  L->Ty = Ty;

  LocationsById.push_back(L);
  LocationMap[Key] = L;
  return L;
}

const Location *LocationTable::withField(const Location *L,
                                         const FieldDecl *F) {
  if (L->isHeap() || L->isNull())
    return L; // heap and NULL absorb field selections
  std::vector<PathElem> Path = L->path();
  Path.push_back(PathElem::field(F));
  return get(L->root(), std::move(Path));
}

const Location *LocationTable::withElem(const Location *L, bool Head) {
  if (L->isHeap() || L->isNull())
    return L;
  std::vector<PathElem> Path = L->path();
  Path.push_back(Head ? PathElem::head() : PathElem::tail());
  return get(L->root(), std::move(Path));
}

const Location *LocationTable::headToTail(const Location *L) {
  if (L->path().empty() || L->path().back().K != PathElem::Kind::Head)
    return L;
  std::vector<PathElem> Path = L->path();
  Path.back() = PathElem::tail();
  return get(L->root(), std::move(Path));
}

void LocationTable::pointerSubLocations(const Location *L,
                                        std::vector<const Location *> &Out) {
  const Type *Ty = L->type();
  if (L->isHeap()) {
    Out.push_back(L);
    return;
  }
  if (!Ty)
    return;
  switch (Ty->kind()) {
  case Type::Kind::Pointer:
    Out.push_back(L);
    return;
  case Type::Kind::Record: {
    const RecordDecl *RD = cast<RecordType>(Ty)->decl();
    for (const FieldDecl *F : RD->fields())
      if (F->type()->isPointerBearing())
        pointerSubLocations(withField(L, F), Out);
    return;
  }
  case Type::Kind::Array: {
    const auto *AT = cast<ArrayType>(Ty);
    if (!AT->element()->isPointerBearing())
      return;
    pointerSubLocations(withElem(L, /*Head=*/true), Out);
    pointerSubLocations(withElem(L, /*Head=*/false), Out);
    return;
  }
  default:
    return;
  }
}
