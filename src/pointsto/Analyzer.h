//===- Analyzer.h - Context-sensitive points-to analysis --------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The points-to analysis driver: the compositional intraprocedural
/// rules of Figure 1 (kill / change-to-possible / gen, if-merge, loop
/// fixed points, plus the full break/continue/return channels of [13]),
/// the interprocedural strategy of Figures 3/4 (map, memoized evaluate,
/// unmap; recursion via pending-list fixed points over Recursive /
/// Approximate invocation-graph nodes), and the function-pointer
/// algorithm of Figure 5 (invocation-graph growth driven by the
/// function pointer's own points-to set, with makeDefinitePointsTo
/// specializing the input per target).
///
/// Two ablation switches reproduce the paper's baselines:
///  - FnPtrMode::AllFunctions / AddressTaken implement the naive call
///    graph instantiation strategies of Sec. 5 (the 'livc' study);
///  - ContextSensitive=false degrades the analysis to one merged
///    summary per function (inputs unioned over all call sites).
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_POINTSTO_ANALYZER_H
#define MCPTA_POINTSTO_ANALYZER_H

#include "ig/InvocationGraph.h"
#include "pointsto/LRLocations.h"
#include "pointsto/MapUnmap.h"
#include "pointsto/PointsToSet.h"
#include "simple/SimpleIR.h"
#include "support/Limits.h"
#include "support/Telemetry.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace mcpta {
namespace support {
class ThreadPool;
} // namespace support
namespace pta {

/// Per-function warning attribution, keyed by the owning FunctionDecl
/// (null for warnings raised outside any body, e.g. at global init).
/// Messages are deduped per owner. The deterministic view sorts owners
/// by function name (null renders as "") and messages lexicographically
/// — exactly the order the previous string-keyed map produced, computed
/// once at read time instead of on every insertion.
class FunctionWarningLog {
public:
  /// Records \p Msg under \p Fn. Returns true when new for that owner.
  bool add(const cfront::FunctionDecl *Fn, const std::string &Msg);

  bool empty() const { return Owners.empty(); }

  /// (owner name, sorted messages) pairs, sorted by owner name.
  std::vector<std::pair<std::string, std::vector<std::string>>>
  sortedByName() const;

  /// The messages attributed to \p Fn (unsorted owner lookup; messages
  /// are sorted and unique).
  const std::vector<std::string> *
  messagesOf(const cfront::FunctionDecl *Fn) const;

private:
  struct OwnerEntry {
    const cfront::FunctionDecl *Fn = nullptr;
    std::vector<std::string> Msgs; ///< sorted, unique
  };
  /// A handful of owners at most: linear decl lookup, no ordered map.
  std::vector<OwnerEntry> Owners;
};

/// How the analyzer models a call to a function without a body. The
/// demand engine's relevance pass (src/demand/) must mirror the
/// analyzer's extern semantics exactly, so the classification is shared
/// rather than duplicated.
enum class ExternModel {
  /// Returns (a pointer into) its first argument (strcpy family): the
  /// call's only pointer effect is `lhs <- targets of arg0` (possible,
  /// unknown index).
  ReturnsArg0,
  /// Known pointer-neutral library function: no pointer effect at all
  /// beyond `lhs <- heap` when the return type is pointer-bearing.
  Neutral,
  /// Anything else: a one-time warning, and the same `lhs <- heap`
  /// model as Neutral. No other location is written.
  Unknown,
};

/// Classification used by the extern-call transfer function.
ExternModel externCallModel(const std::string &Name);

/// How indirect call sites are bound to callees.
enum class FnPtrMode {
  Precise,      ///< Figure 5: the function pointer's points-to set
  AllFunctions, ///< naive baseline: every function in the program
  AddressTaken, ///< baseline: every function whose address is taken
};

/// Hook the incremental engine (src/incr/) uses to seed the invocation
/// graph's memo tables from a previous run's snapshot. When installed
/// via Options::Seeder, the analyzer consults it exactly once per node,
/// at the node's first would-be body evaluation: a successful trySeed
/// must leave the node (and its grafted subtree) in the same state a
/// fresh evaluation would have produced — StoredInput/StoredOutput set,
/// FixpointDone for recursive nodes, memo dependencies recorded — and
/// the analyzer then consumes Node->StoredOutput without touching the
/// body.
class MemoSeeder {
public:
  virtual ~MemoSeeder() = default;

  /// Called once after the initial invocation-graph build, before any
  /// evaluation, handing over the live structures seeds graft into.
  virtual void begin(const simple::Program &Prog, InvocationGraph &IG,
                     LocationTable &Locs) = 0;

  /// Attempts to satisfy the first evaluation of \p Node (its EvalCount
  /// is still 0) for calling context \p Input. Returns true on a
  /// successful graft.
  virtual bool trySeed(IGNode *Node, const PointsToSet &Input) = 0;
};

/// Entry point of the points-to analysis.
class Analyzer {
public:
  struct Options {
    FnPtrMode FnPtr = FnPtrMode::Precise;
    /// When false, one merged summary per function replaces the
    /// per-invocation-context memoization (ablation baseline).
    bool ContextSensitive = true;
    /// Record the merged input points-to set at every statement
    /// (required by the Tables 3-5 statistics clients).
    bool RecordStmtSets = true;
    /// K-limit for symbolic-name chains (see LocationTable).
    unsigned SymbolicLevelLimit = 5;
    /// Safety valve for loop fixed points.
    unsigned MaxLoopIterations = 10000;
    /// Resource budgets (wall-clock deadline, statement-visit budget,
    /// abstract-location cap, invocation-graph node cap, recursion
    /// pass cap). Default: all unlimited, no meter allocated, zero
    /// overhead. When any budget trips the run does not die — it
    /// degrades soundly and visibly; see Result::Degradations and
    /// docs/ROBUSTNESS.md for the fallback semantics.
    support::AnalysisLimits Limits;
    /// Optional instrumentation sink. When null (the default), the
    /// analysis records nothing and pays only a null-pointer branch at
    /// each instrumented site. When set, phase spans (ig-build,
    /// pointsto), hot-path counters (pta.*, mu.*, ig.*), and size
    /// histograms are recorded into it (see docs/OBSERVABILITY.md).
    support::Telemetry *Telem = nullptr;
    /// Memo-table seeding hook for incremental re-analysis; null (the
    /// default) for ordinary from-scratch runs.
    MemoSeeder *Seeder = nullptr;
    /// Statement-liveness filter for demand-driven queries (src/demand/),
    /// indexed by simple::Stmt::id(). A statement whose entry is 0 is an
    /// identity transfer: its points-to effect (and, for calls, the
    /// entire invocation subtree underneath it) is skipped. Ids at or
    /// beyond the vector's size are treated as live, and null (the
    /// default) analyzes everything. The caller is responsible for only
    /// marking statements dead when skipping them cannot change the
    /// projection of the result it intends to read (see docs/DEMAND.md
    /// for the exactness argument the demand engine relies on).
    const std::vector<uint8_t> *LiveStmts = nullptr;
    /// Width of the parallel fixed-point engine (docs/PARALLEL.md).
    /// 1 (the default) is the classic sequential engine. N>1 offloads
    /// the per-statement StmtIn folding onto a work-stealing pool while
    /// the analysis itself — interning, invocation-graph growth, memo
    /// decisions — stays on the calling thread, so the result is
    /// byte-identical to the sequential engine's at any width.
    unsigned AnalysisThreads = 1;
    /// Optional externally owned pool to run on (shared by the batch
    /// driver and the serve daemon). When set it overrides
    /// AnalysisThreads; when null and AnalysisThreads>1 the analyzer
    /// creates a private pool for the run.
    support::ThreadPool *Pool = nullptr;
  };

  struct Result {
    /// Owns every Entity/Location the sets refer to.
    std::unique_ptr<LocationTable> Locs;
    /// The invocation graph, completed with function-pointer targets.
    std::unique_ptr<InvocationGraph> IG;
    /// Per-statement input points-to set, merged over all invocation
    /// contexts reaching the statement (index: simple::Stmt::id()).
    /// Unset entries are statements never reached.
    std::vector<std::optional<PointsToSet>> StmtIn;
    /// Points-to set at the end of main.
    std::optional<PointsToSet> MainOut;
    /// False when the program has no defined main.
    bool Analyzed = false;

    /// Headline counters, published once at the end of the run. These
    /// are thin reads of the unified telemetry counters (pta.*): when
    /// Options::Telem is set, the same values appear there under
    /// "pta.body_analyses", "pta.loop_iterations", and "pta.memo_hits".
    unsigned BodyAnalyses = 0;
    unsigned LoopIterations = 0;
    /// Calls answered from a node's memoized IN/OUT pair without
    /// re-analyzing the body (the paper's Sec. 4 advantage (3)).
    unsigned MemoHits = 0;
    std::vector<std::string> Warnings;
    /// Every warning message keyed by the FunctionDecl whose evaluation
    /// emitted it (null for warnings raised outside any function body,
    /// e.g. at global init). Unlike Warnings this is not deduplicated
    /// across functions: a message two bodies both trigger appears
    /// under both. The incremental engine restores a skipped clean
    /// function's warnings from its baseline entry.
    FunctionWarningLog WarningsByFn;

    /// Every budget-triggered degradation the run took, in the order
    /// they were entered (also mirrored as pta.degraded.* telemetry
    /// counters and surfaced as warnings by the Pipeline). Empty for a
    /// clean run. A degraded result is still safe to consume: each
    /// fallback over-approximates (merged summaries, address-taken
    /// binding, immediate k-limit collapse), except where the entry's
    /// Action says a fixed point was cut short (see docs/ROBUSTNESS.md
    /// for the per-fallback soundness argument).
    std::vector<support::Degradation> Degradations;
    bool degraded() const { return !Degradations.empty(); }
  };

  /// Runs the analysis over a simplified program.
  static Result run(const simple::Program &Prog, const Options &Opts);
  /// Runs with default options.
  static Result run(const simple::Program &Prog);
};

} // namespace pta
} // namespace mcpta

#endif // MCPTA_POINTSTO_ANALYZER_H
