//===- Scheduler.cpp - Parallel fixed-point scheduler ---------------------===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "pointsto/Scheduler.h"

#include <stdexcept>

using namespace mcpta;
using namespace mcpta::pta;

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

Scheduler::UnitId Scheduler::addUnit(std::function<void()> Work,
                                     std::vector<UnitId> Deps) {
  UnitId Id = Units.size();
  auto U = std::make_unique<Unit>();
  U->Work = std::move(Work);
  Units.push_back(std::move(U));
  unsigned Pending = 0;
  for (UnitId D : Deps) {
    if (D >= Id)
      throw std::logic_error("scheduler: dependency on a later unit");
    Units[D]->Dependents.push_back(Id);
    ++Pending;
  }
  Units[Id]->PendingDeps.store(Pending, std::memory_order_relaxed);
  Units[Id]->InitialDeps = Pending;
  return Id;
}

void Scheduler::dispatch(UnitId Id) {
  Par.Tasks.fetch_add(1, std::memory_order_relaxed);
  Pool.submit([this, Id] {
    Units[Id]->Work();
    Executed.fetch_add(1, std::memory_order_relaxed);
    // Release dependents; whoever drops a unit's last dependency
    // dispatches it (exactly-once by the fetch_sub).
    for (UnitId Dep : Units[Id]->Dependents)
      if (Units[Dep]->PendingDeps.fetch_sub(1, std::memory_order_acq_rel) ==
          1)
        dispatch(Dep);
  });
}

void Scheduler::run() {
  if (Units.empty())
    return;
  for (UnitId Id = 0; Id < Units.size(); ++Id)
    if (Units[Id]->InitialDeps == 0)
      dispatch(Id);
  Par.BarrierWaits.fetch_add(1, std::memory_order_relaxed);
  Pool.wait();
  uint64_t Ran = Executed.load(std::memory_order_relaxed);
  size_t Total = Units.size();
  Units.clear();
  Executed.store(0, std::memory_order_relaxed);
  if (Ran < Total)
    throw std::logic_error("scheduler: dependency cycle left " +
                           std::to_string(Total - Ran) +
                           " unit(s) unscheduled");
}

//===----------------------------------------------------------------------===//
// StmtInFolder
//===----------------------------------------------------------------------===//

StmtInFolder::StmtInFolder(support::ThreadPool &Pool,
                           std::vector<OptSet> &Slots, ParCounters &Par,
                           unsigned NumShards)
    : Pool(Pool), Slots(Slots), Par(Par) {
  if (NumShards == 0)
    NumShards = 1;
  Shards.reserve(NumShards);
  for (unsigned I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

void StmtInFolder::record(unsigned StmtId, const PointsToSet &In) {
  Par.FoldRecords.fetch_add(1, std::memory_order_relaxed);
  PendingRecords.fetch_add(1, std::memory_order_acq_rel);
  Shard &S = *Shards[StmtId % Shards.size()];
  bool Spawn = false;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Q.emplace_back(StmtId, In); // CoW share, no deep copy
    if (!S.Scheduled) {
      S.Scheduled = true;
      Spawn = true;
    }
  }
  if (Spawn) {
    ActiveDrains.fetch_add(1, std::memory_order_acq_rel);
    Pool.submit([this, &S] { drain(S); });
  }
}

void StmtInFolder::drain(Shard &S) {
  for (;;) {
    std::deque<std::pair<unsigned, PointsToSet>> Batch;
    {
      std::lock_guard<std::mutex> Lock(S.Mu);
      if (S.Q.empty()) {
        S.Scheduled = false;
        break;
      }
      Batch.swap(S.Q);
    }
    // Exclusive claim: this task is the only drainer of the shard, so
    // the batch applies in FIFO order — the order the analysis thread
    // recorded, which is the sequential engine's fold order per slot.
    for (auto &[Id, Set] : Batch) {
      OptSet &Slot = Slots[Id];
      if (!Slot)
        Slot = std::move(Set);
      else
        Slot->mergeWith(Set);
    }
    PendingRecords.fetch_sub(Batch.size(), std::memory_order_acq_rel);
  }
  // Task exit. The decrement and the notification happen under FinishMu
  // so finish() cannot observe ActiveDrains == 0 while this task still
  // has folder state left to touch: once a waiter holding FinishMu sees
  // 0, this critical section — the task's last access — has completed,
  // and destroying the folder immediately after finish() is safe.
  std::lock_guard<std::mutex> Lock(FinishMu);
  ActiveDrains.fetch_sub(1, std::memory_order_acq_rel);
  FinishCv.notify_all();
}

void StmtInFolder::finish() {
  std::unique_lock<std::mutex> Lock(FinishMu);
  auto Done = [this] {
    return PendingRecords.load(std::memory_order_acquire) == 0 &&
           ActiveDrains.load(std::memory_order_acquire) == 0;
  };
  if (Done())
    return;
  Par.BarrierWaits.fetch_add(1, std::memory_order_relaxed);
  FinishCv.wait(Lock, Done);
}
