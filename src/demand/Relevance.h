//===- Relevance.h - Query-relevance pre-pass for demand queries -*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demand engine's relevance pre-pass: a flow-insensitive,
/// field-insensitive, root-granularity (Andersen-style) points-to
/// overapproximation of the whole program, used to decide which
/// statements of main's body (and the global initializers) can affect a
/// query's relevant roots.
///
/// Roots are whole variables (every VarDecl: globals, parameters,
/// locals, simplifier temporaries), one summary heap root, and one
/// return-value root per function; access paths collapse onto their
/// root. Because the pass over-approximates the precise analysis —
/// including the extern-call model, which it mirrors exactly via
/// pta::externCallModel — a statement whose conservative write set
/// misses every relevant root provably cannot change any (x, y, D|P)
/// triple whose source is rooted at a relevant root, so the precise
/// analyzer may treat it as an identity transfer
/// (Analyzer::Options::LiveStmts). docs/DEMAND.md carries the full
/// exactness argument, including why calls are all-or-nothing: a live
/// call pulls everything the map() phase would mirror into the callee
/// into the relevant set, so a skipped call is exactly one whose entire
/// conservative mod set is disjoint from it.
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_DEMAND_RELEVANCE_H
#define MCPTA_DEMAND_RELEVANCE_H

#include "simple/SimpleIR.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mcpta {
namespace demand {

class Relevance {
public:
  /// Builds the flow-insensitive solution for \p Prog. The program must
  /// outlive this object. Indirect calls contribute no constraints —
  /// callers gate function-pointer programs out before relying on the
  /// solution (DemandQuery's `fnptr` fallback).
  explicit Relevance(const simple::Program &Prog);
  ~Relevance(); // out-of-line: Facts holds an incomplete type here

  /// Root id of a variable; -1 for variables the pass never saw.
  int rootOf(const cfront::VarDecl *V) const;
  int heapRoot() const { return 0; }
  unsigned numRoots() const { return static_cast<unsigned>(PTS.size()); }

  /// Flow-insensitive may-point-to set of a root (root granularity).
  const std::set<int> &pts(int Root) const { return PTS[Root]; }

  /// Transitive points-to closure of \p Seeds (as a root bitmask).
  std::vector<uint8_t> reachClosure(const std::vector<int> &Seeds) const;

  /// Result of the per-query liveness pass over main + globalInit.
  struct Liveness {
    /// Indexed by simple::Stmt::id(); 1 = analyze, 0 = identity
    /// transfer. Statements outside main's body and the global
    /// initializer block are always 1.
    std::vector<uint8_t> LiveStmts;
    /// Basic statements in the pruned region (main + globalInit) and
    /// how many of them stayed live.
    size_t SliceBasic = 0;
    size_t LiveBasic = 0;
    /// True when some non-extern call in main stayed live (the slice
    /// then descends into the invocation graph under it).
    bool AnyLiveCall = false;
  };

  /// Computes the live-statement filter for a query whose answer is the
  /// projection of the result onto triples rooted at \p SeedRoots
  /// (root ids; unknown ids ignored). Fixpoint: a statement is live iff
  /// its conservative write set meets the relevant set, and a live
  /// statement's reads join the relevant set.
  Liveness liveness(const std::vector<int> &SeedRoots) const;

  /// Statistics of the relevance build, for telemetry.
  struct Stats {
    uint64_t Roots = 0;
    uint64_t Passes = 0;
    uint64_t Edges = 0; ///< total points-to facts in the solution
  };
  Stats stats() const;

private:
  struct StmtFacts;

  int rootOfRetval(const cfront::FunctionDecl *F) const;
  /// Roots the value of \p Op may point to, per the current solution.
  std::set<int> operandValue(const simple::Operand &Op) const;
  std::set<int> refValue(const simple::Reference &R) const;
  /// Applies one statement's constraints; true when a set grew.
  bool applyStmt(const simple::Stmt *S, const cfront::FunctionDecl *Owner);
  bool applyCall(const simple::CallInfo &CI, const simple::Reference *LhsRef);
  bool addAll(int Root, const std::set<int> &Vals);

  const simple::Program &Prog;
  std::map<const cfront::VarDecl *, int> VarRoot;
  std::map<const cfront::FunctionDecl *, int> RetvalRoot;
  std::vector<std::set<int>> PTS;
  /// Root ids of pointer-bearing globals (every non-extern call
  /// conservatively reads and writes all of them, plus heap).
  std::vector<int> PointerBearingGlobals;
  /// Liveness facts for every basic statement of the pruned region
  /// (main's body + globalInit), precomputed against the stable
  /// solution at construction time.
  std::vector<StmtFacts> Facts;
  /// Reach closure of {pointer-bearing globals, heap}: part of every
  /// non-extern call's conservative mod set.
  std::set<int> GlobalReach;
  uint64_t Passes = 0;
};

} // namespace demand
} // namespace mcpta

#endif // MCPTA_DEMAND_RELEVANCE_H
