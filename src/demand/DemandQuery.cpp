//===- DemandQuery.cpp - Demand-driven points-to queries ------------------===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "demand/DemandQuery.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cctype>

namespace mcpta {
namespace demand {

using namespace mcpta::simple;
namespace cf = mcpta::cfront;

/// Alias-pair expressions carry at most this many dereferences
/// (clients::aliasPairs MaxDerefs default, which is what capture()
/// uses); any deeper expression is absent from every pair table.
static constexpr int MaxAliasDerefs = 2;

std::pair<int, std::string> parseAliasExpr(const std::string &Expr) {
  size_t I = 0;
  while (I < Expr.size() && Expr[I] == '*')
    ++I;
  std::string Base = Expr.substr(I);
  if (Base.empty() ||
      !(std::isalpha(static_cast<unsigned char>(Base[0])) || Base[0] == '_'))
    return {-1, ""};
  for (char C : Base)
    if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_'))
      return {-1, ""};
  return {static_cast<int>(I), Base};
}

namespace {

/// Preorder walk over a statement tree (compounds included).
template <typename Fn> void walkStmts(const Stmt *S, Fn &&F) {
  if (!S)
    return;
  F(S);
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const Stmt *C : castStmt<BlockStmt>(S)->Body)
      walkStmts(C, F);
    break;
  case Stmt::Kind::If: {
    const auto *I = castStmt<IfStmt>(S);
    walkStmts(I->Then, F);
    walkStmts(I->Else, F);
    break;
  }
  case Stmt::Kind::Loop: {
    const auto *L = castStmt<LoopStmt>(S);
    walkStmts(L->Body, F);
    walkStmts(L->Trailer, F);
    break;
  }
  case Stmt::Kind::Switch:
    for (const SwitchStmt::Case &C : castStmt<SwitchStmt>(S)->Cases)
      for (const Stmt *B : C.Body)
        walkStmts(B, F);
    break;
  default:
    break;
  }
}

/// The call info of a basic statement, if it has one.
const CallInfo *callOf(const Stmt *S) {
  if (const auto *C = dynCastStmt<CallStmt>(S))
    return &C->Call;
  if (const auto *A = dynCastStmt<AssignStmt>(S))
    if (A->RK == AssignStmt::RhsKind::Call)
      return &A->Call;
  return nullptr;
}

/// True when a direct-call cycle is reachable from main. The pruned
/// analyzer still handles recursion soundly, but the pending-list
/// fixpoint's *trajectory* (which approximations it takes, in which
/// order) is a whole-graph property, so the demand engine refuses to
/// claim byte-equality and falls back.
bool hasRecursionFromMain(const Program &Prog, const FunctionIR *Main) {
  if (!Main)
    return false;
  std::map<const cf::FunctionDecl *, std::vector<const cf::FunctionDecl *>>
      Callees;
  for (const FunctionIR &F : Prog.functions()) {
    if (!F.Decl)
      continue;
    std::vector<const cf::FunctionDecl *> &Out = Callees[F.Decl];
    walkStmts(F.Body, [&](const Stmt *S) {
      if (const CallInfo *CI = callOf(S))
        if (CI->Callee && Prog.findFunction(CI->Callee))
          Out.push_back(CI->Callee);
    });
  }
  // Iterative DFS; gray = on the current path.
  enum : uint8_t { White, Gray, Black };
  std::map<const cf::FunctionDecl *, uint8_t> Color;
  struct Frame {
    const cf::FunctionDecl *Fn;
    size_t Next = 0;
  };
  std::vector<Frame> Stack{{Main->Decl, 0}};
  Color[Main->Decl] = Gray;
  while (!Stack.empty()) {
    Frame &F = Stack.back();
    const std::vector<const cf::FunctionDecl *> &Out = Callees[F.Fn];
    if (F.Next >= Out.size()) {
      Color[F.Fn] = Black;
      Stack.pop_back();
      continue;
    }
    const cf::FunctionDecl *Callee = Out[F.Next++];
    uint8_t &C = Color[Callee];
    if (C == Gray)
      return true;
    if (C == White) {
      C = Gray;
      Stack.push_back({Callee, 0});
    }
  }
  return false;
}

} // namespace

DemandEngine::DemandEngine(const simple::Program &Prog, DemandOptions Opts)
    : Prog(Prog), Opts(std::move(Opts)) {
  for (const FunctionIR &F : Prog.functions())
    if (F.Decl && F.Decl->name() == "main" && F.Body) {
      Main = &F;
      break;
    }

  // Name index for resolution gates: every variable the program
  // declares, keyed by display name.
  auto Index = [this](const cf::VarDecl *V) {
    if (!V)
      return;
    std::vector<const cf::VarDecl *> &L = VarsByName[V->name()];
    if (std::find(L.begin(), L.end(), V) == L.end())
      L.push_back(V);
  };
  for (const cf::VarDecl *G : Prog.globals())
    Index(G);
  for (const FunctionIR &F : Prog.functions()) {
    if (F.Decl) {
      FunctionNames.insert(F.Decl->name());
      for (const cf::VarDecl *P : F.Decl->params())
        Index(P);
    }
    for (const cf::VarDecl *L : F.Locals)
      Index(L);
  }

  // Whole-program gates, most fundamental first.
  if (!Main) {
    ProgramGate = "no-main";
    return;
  }
  if (!this->Opts.Analyzer.ContextSensitive ||
      this->Opts.Analyzer.FnPtr != pta::FnPtrMode::Precise ||
      this->Opts.Analyzer.Seeder) {
    ProgramGate = "options";
    return;
  }
  bool AnyIndirect = false;
  for (const FunctionIR &F : Prog.functions())
    walkStmts(F.Body, [&](const Stmt *S) {
      if (const CallInfo *CI = callOf(S))
        if (CI->isIndirect())
          AnyIndirect = true;
    });
  if (AnyIndirect) {
    ProgramGate = "fnptr";
    return;
  }
  if (hasRecursionFromMain(Prog, Main))
    ProgramGate = "recursion";
}

DemandEngine::~DemandEngine() = default;

const Relevance &DemandEngine::relevance() {
  if (!Rel)
    Rel = std::make_unique<Relevance>(Prog);
  return *Rel;
}

Relevance::Stats DemandEngine::relevanceStats() const {
  return Rel ? Rel->stats() : Relevance::Stats{};
}

const serve::ResultSnapshot &DemandEngine::exhaustiveSnapshot() {
  if (!Exh) {
    pta::Analyzer::Result Res = pta::Analyzer::run(Prog, Opts.Analyzer);
    Exh = std::make_unique<serve::ResultSnapshot>(serve::ResultSnapshot::capture(
        Prog, Res, serve::optionsFingerprint(Opts.Analyzer)));
  }
  return *Exh;
}

int DemandEngine::resolveRoot(const std::string &Name, std::string &GateOut) {
  auto It = VarsByName.find(Name);
  if (It == VarsByName.end() || It->second.empty()) {
    GateOut = "unresolved-name";
    return -1;
  }
  if (It->second.size() > 1 || FunctionNames.count(Name)) {
    // Several variables (or a variable and a function location) share
    // the display name: snapshot lookups resolve by name alone, so the
    // demand and exhaustive tables could pick different locations.
    GateOut = "ambiguous-name";
    return -1;
  }
  const cf::VarDecl *V = It->second.front();
  if (V->storage() != cf::VarDecl::Storage::Global) {
    bool InMain = false;
    if (Main) {
      const std::vector<cf::VarDecl *> &Ps = Main->Decl->params();
      InMain = std::find(Ps.begin(), Ps.end(), V) != Ps.end() ||
               std::find(Main->Locals.begin(), Main->Locals.end(), V) !=
                   Main->Locals.end();
    }
    if (!InMain) {
      GateOut = "not-main-scope";
      return -1;
    }
  }
  int Root = relevance().rootOf(V);
  if (Root < 0)
    GateOut = "unresolved-name";
  return Root;
}

void DemandEngine::answerFrom(const Query &Q, const serve::ResultSnapshot &S,
                              Answer &A) {
  if (Q.K == Query::Kind::Alias) {
    A.Aliased = S.aliased(Q.A, Q.B);
    A.Ok = true;
    return;
  }
  if (S.locationIdByName(Q.Name) < 0) {
    A.Ok = false;
    A.Error = "unknown location '" + Q.Name + "'";
    return;
  }
  A.Targets = S.pointsToTargets(Q.Name, Q.StmtId);
  A.Ok = true;
}

Answer DemandEngine::fallback(const Query &Q, const std::string &Reason) {
  Answer A;
  A.FallbackReason = Reason;
  if (!Opts.RunExhaustiveOnFallback) {
    A.Error = "demand fallback: " + Reason;
    return A;
  }
  A.Strategy = "exhaustive";
  answerFrom(Q, exhaustiveSnapshot(), A);
  return A;
}

Answer DemandEngine::query(const Query &Q) {
  // Statement-scoped queries need the per-statement set recording the
  // pruned run turns off.
  if (Q.K == Query::Kind::PointsTo && Q.StmtId >= 0)
    return fallback(Q, "stmt-scope");
  if (!ProgramGate.empty())
    return fallback(Q, ProgramGate);

  std::vector<int> Seeds;
  std::string Gate;
  if (Q.K == Query::Kind::Alias) {
    auto [StarsA, BaseA] = parseAliasExpr(Q.A);
    auto [StarsB, BaseB] = parseAliasExpr(Q.B);
    if (StarsA < 0 || StarsB < 0)
      return fallback(Q, "unresolved-name");
    // Trivial non-aliases, exact by construction of the pair table:
    // pairs are between *distinct* expression strings, expressions
    // never exceed MaxAliasDerefs stars, and a plain name appears only
    // in its own location's expression list.
    if (Q.A == Q.B || StarsA > MaxAliasDerefs || StarsB > MaxAliasDerefs ||
        (StarsA == 0 && StarsB == 0)) {
      Answer A;
      A.Ok = true;
      A.Strategy = "demand";
      A.Aliased = false;
      return A;
    }
    for (const auto &[Stars, Base] : {std::pair<int, std::string>(StarsA, BaseA),
                                      std::pair<int, std::string>(StarsB, BaseB)}) {
      int Root = resolveRoot(Base, Gate);
      if (Root < 0)
        return fallback(Q, Gate);
      Seeds.push_back(Root);
      if (Stars >= 2) {
        // A k-star expression's pair membership consults the triples of
        // the (k-1) intermediate targets too; the flow-insensitive pts
        // set over-approximates every exact intermediate.
        for (int T : relevance().pts(Root))
          Seeds.push_back(T);
      }
    }
  } else {
    auto [Stars, Base] = parseAliasExpr(Q.Name);
    if (Stars != 0)
      return fallback(Q, "unresolved-name");
    int Root = resolveRoot(Base, Gate);
    if (Root < 0)
      return fallback(Q, Gate);
    Seeds.push_back(Root);
  }

  const Relevance &R = relevance();
  Relevance::Liveness LV = R.liveness(Seeds);

  pta::Analyzer::Options AO = Opts.Analyzer;
  AO.RecordStmtSets = false;
  AO.Seeder = nullptr;
  AO.LiveStmts = &LV.LiveStmts;
  // Always-on child telemetry: the visited/skipped statement counts are
  // the bench's pruning evidence. Folded into the caller's sink (when
  // any) so serve observability sees the pruned run's pta.* traffic.
  support::Telemetry RunTelem(true);
  AO.Telem = &RunTelem;
  pta::Analyzer::Result Res = pta::Analyzer::run(Prog, AO);

  Answer A;
  std::map<std::string, uint64_t, std::less<>> C = RunTelem.countersSnapshot();
  A.VisitedStmts = C.count("pta.stmt_visits") ? C["pta.stmt_visits"] : 0;
  A.SkippedStmts = C.count("pta.stmt_skips") ? C["pta.stmt_skips"] : 0;
  A.SliceBasic = LV.SliceBasic;
  A.LiveBasic = LV.LiveBasic;
  if (Opts.Analyzer.Telem)
    Opts.Analyzer.Telem->mergeFrom(RunTelem);

  if (!Res.Analyzed || Res.degraded()) {
    Answer F = fallback(Q, "degraded");
    F.VisitedStmts = A.VisitedStmts;
    F.SkippedStmts = A.SkippedStmts;
    F.SliceBasic = A.SliceBasic;
    F.LiveBasic = A.LiveBasic;
    return F;
  }

  serve::ResultSnapshot Snap = serve::ResultSnapshot::capture(
      Prog, Res, serve::optionsFingerprint(AO));
  if (Q.K == Query::Kind::PointsTo && Snap.locationIdByName(Q.Name) < 0) {
    // The exhaustive location table can still mention the name (via
    // statement sets or invocation-graph records the pruned run does
    // not produce); let the fallback decide between an answer and the
    // unknown-location error.
    Answer F = fallback(Q, "unmentioned");
    F.VisitedStmts = A.VisitedStmts;
    F.SkippedStmts = A.SkippedStmts;
    F.SliceBasic = A.SliceBasic;
    F.LiveBasic = A.LiveBasic;
    return F;
  }
  A.Strategy = "demand";
  answerFrom(Q, Snap, A);
  return A;
}

} // namespace demand
} // namespace mcpta
