//===- Relevance.cpp - Query-relevance pre-pass for demand queries --------===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "demand/Relevance.h"

#include "pointsto/Analyzer.h"

#include <deque>

namespace mcpta {
namespace demand {

using namespace mcpta::simple;
namespace cf = mcpta::cfront;

namespace {

/// Preorder walk over a statement tree (compounds included).
template <typename Fn> void forEachStmt(const Stmt *S, Fn &&F) {
  if (!S)
    return;
  F(S);
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const Stmt *C : castStmt<BlockStmt>(S)->Body)
      forEachStmt(C, F);
    break;
  case Stmt::Kind::If: {
    const auto *I = castStmt<IfStmt>(S);
    forEachStmt(I->Then, F);
    forEachStmt(I->Else, F);
    break;
  }
  case Stmt::Kind::Loop: {
    const auto *L = castStmt<LoopStmt>(S);
    forEachStmt(L->Body, F);
    forEachStmt(L->Trailer, F);
    break;
  }
  case Stmt::Kind::Switch:
    for (const SwitchStmt::Case &C : castStmt<SwitchStmt>(S)->Cases)
      for (const Stmt *B : C.Body)
        forEachStmt(B, F);
    break;
  default:
    break;
  }
}

const FunctionIR *findMain(const Program &Prog) {
  for (const FunctionIR &F : Prog.functions())
    if (F.Decl && F.Decl->name() == "main" && F.Body)
      return &F;
  return nullptr;
}

} // namespace

/// Conservative per-statement facts for the liveness pass, precomputed
/// once the flow-insensitive solution is stable.
struct Relevance::StmtFacts {
  unsigned StmtId = 0;
  /// Roots this statement may create/kill/demote triples for.
  std::set<int> Writes;
  /// Roots whose triples the statement's transfer function consults;
  /// joined into the relevant set when the statement goes live.
  std::set<int> Reads;
  /// exit()-style calls: pure control effect, always analyzed.
  bool AlwaysLive = false;
  /// Non-extern call (descends into the invocation graph when live).
  bool IsBodyCall = false;
};

Relevance::~Relevance() = default;

//===----------------------------------------------------------------------===//
// Construction: roots and the flow-insensitive fixpoint
//===----------------------------------------------------------------------===//

Relevance::Relevance(const simple::Program &Prog) : Prog(Prog) {
  // Root 0 is the summary heap; then every variable the program can
  // mention, then one return-value root per defined function.
  PTS.emplace_back(); // heap
  auto AddVar = [this](const cf::VarDecl *V) {
    if (!V || VarRoot.count(V))
      return;
    VarRoot[V] = static_cast<int>(PTS.size());
    PTS.emplace_back();
  };
  for (const cf::VarDecl *G : Prog.globals()) {
    AddVar(G);
    if (G->type() && G->type()->isPointerBearing())
      PointerBearingGlobals.push_back(VarRoot[G]);
  }
  for (const FunctionIR &F : Prog.functions()) {
    if (F.Decl)
      for (const cf::VarDecl *P : F.Decl->params())
        AddVar(P);
    for (const cf::VarDecl *L : F.Locals)
      AddVar(L);
    if (F.Decl && !RetvalRoot.count(F.Decl)) {
      RetvalRoot[F.Decl] = static_cast<int>(PTS.size());
      PTS.emplace_back();
    }
  }

  // Whole-program fixpoint: re-apply every statement's constraints
  // until no set grows. Monotone and bounded by roots^2 facts.
  bool Changed = true;
  while (Changed) {
    ++Passes;
    Changed = false;
    forEachStmt(Prog.globalInit(), [&](const Stmt *S) {
      if (applyStmt(S, nullptr))
        Changed = true;
    });
    for (const FunctionIR &F : Prog.functions())
      forEachStmt(F.Body, [&](const Stmt *S) {
        if (applyStmt(S, F.Decl))
          Changed = true;
      });
  }

  // Precompute the liveness facts for the pruned region (main's body
  // plus the global initializers) against the now-stable solution.
  std::vector<int> GlobSeeds = PointerBearingGlobals;
  GlobSeeds.push_back(heapRoot());
  std::vector<uint8_t> GR = reachClosure(GlobSeeds);
  for (size_t I = 0; I < GR.size(); ++I)
    if (GR[I])
      GlobalReach.insert(static_cast<int>(I));

  auto OperandReads = [this](const Operand &Op, std::set<int> &Out) {
    if (!Op.isRef() || !Op.Ref.Base)
      return;
    int B = rootOf(Op.Ref.Base);
    if (B < 0)
      return;
    if (Op.Ref.AddrOf) {
      // &x reads nothing; &(*p).f reads p's triples to locate targets.
      if (Op.Ref.Deref)
        Out.insert(B);
      return;
    }
    Out.insert(B);
    if (Op.Ref.Deref)
      for (int T : PTS[B])
        Out.insert(T);
  };

  auto CallFacts = [&](const CallInfo &CI, StmtFacts &F) {
    if (CI.NoReturn) {
      // Pure control effect (the call never returns); processCall
      // short-circuits before descending, so keeping it live is free.
      F.AlwaysLive = true;
      return;
    }
    if (CI.isIndirect()) {
      // Function-pointer calls are gated out before liveness is used;
      // stay conservative if one slips through.
      F.AlwaysLive = true;
      return;
    }
    const FunctionIR *Callee = Prog.findFunction(CI.Callee);
    if (!Callee || !Callee->Body) {
      // Extern model (mirrors Analyzer's applyExtern): the only write
      // is through the assignment's lhs, handled by the caller; the
      // only read is arg0's value for the strcpy family.
      if (pta::externCallModel(CI.Callee->name()) ==
              pta::ExternModel::ReturnsArg0 &&
          !CI.Args.empty())
        OperandReads(CI.Args[0], F.Reads);
      return;
    }
    // A call with a body: map() mirrors every pointer-bearing global,
    // the heap, and everything reachable from the actuals into the
    // callee, and unmap() kills/rewrites exactly those sources. The
    // call's conservative mod set is that whole mapped world — and a
    // *live* call must pull all of it into the relevant set, because
    // the callee's behavior (memoization, symbolic demotion) depends on
    // the entire mapped input being byte-identical to the exhaustive
    // run's.
    F.IsBodyCall = true;
    std::vector<int> Seeds;
    for (const Operand &A : CI.Args) {
      OperandReads(A, F.Reads);
      for (int V : operandValue(A))
        Seeds.push_back(V);
    }
    std::vector<uint8_t> Reach = reachClosure(Seeds);
    for (size_t I = 0; I < Reach.size(); ++I)
      if (Reach[I])
        F.Writes.insert(static_cast<int>(I));
    F.Writes.insert(GlobalReach.begin(), GlobalReach.end());
    F.Reads.insert(F.Writes.begin(), F.Writes.end());
  };

  auto CollectBasic = [&](const Stmt *S) {
    if (S->kind() != Stmt::Kind::Assign && S->kind() != Stmt::Kind::Call)
      return;
    StmtFacts F;
    F.StmtId = S->id();
    if (const auto *A = dynCastStmt<AssignStmt>(S)) {
      if (A->Lhs.Base) {
        int B = rootOf(A->Lhs.Base);
        if (B >= 0) {
          if (A->Lhs.Deref) {
            F.Reads.insert(B);
            for (int T : PTS[B])
              F.Writes.insert(T);
          } else {
            F.Writes.insert(B);
          }
        }
      }
      switch (A->RK) {
      case AssignStmt::RhsKind::Operand:
      case AssignStmt::RhsKind::Unary:
        OperandReads(A->A, F.Reads);
        break;
      case AssignStmt::RhsKind::Binary:
        OperandReads(A->A, F.Reads);
        OperandReads(A->B, F.Reads);
        break;
      case AssignStmt::RhsKind::Alloc:
        break;
      case AssignStmt::RhsKind::Call:
        CallFacts(A->Call, F);
        break;
      }
    } else if (const auto *C = dynCastStmt<CallStmt>(S)) {
      CallFacts(C->Call, F);
    }
    Facts.push_back(std::move(F));
  };
  forEachStmt(Prog.globalInit(), CollectBasic);
  if (const FunctionIR *Main = findMain(Prog))
    forEachStmt(Main->Body, CollectBasic);
}

int Relevance::rootOf(const cf::VarDecl *V) const {
  auto It = VarRoot.find(V);
  return It == VarRoot.end() ? -1 : It->second;
}

int Relevance::rootOfRetval(const cf::FunctionDecl *F) const {
  auto It = RetvalRoot.find(F);
  return It == RetvalRoot.end() ? -1 : It->second;
}

bool Relevance::addAll(int Root, const std::set<int> &Vals) {
  if (Root < 0 || Vals.empty())
    return false;
  size_t Before = PTS[Root].size();
  PTS[Root].insert(Vals.begin(), Vals.end());
  return PTS[Root].size() != Before;
}

std::set<int> Relevance::refValue(const simple::Reference &R) const {
  std::set<int> Out;
  if (!R.Base)
    return Out;
  int B = rootOf(R.Base);
  if (B < 0)
    return Out;
  if (R.AddrOf) {
    if (R.Deref) {
      // &(*p).f: an address inside whatever p points to.
      Out = PTS[B];
    } else {
      Out.insert(B);
    }
    return Out;
  }
  if (R.Deref) {
    for (int T : PTS[B])
      Out.insert(PTS[T].begin(), PTS[T].end());
  } else {
    Out = PTS[B];
  }
  return Out;
}

std::set<int> Relevance::operandValue(const simple::Operand &Op) const {
  if (Op.isRef())
    return refValue(Op.Ref);
  // Constants, strings, nulls and function addresses carry no roots the
  // liveness pass tracks (strings hold no pointers; function-pointer
  // programs are gated out before the solution is consulted).
  return {};
}

bool Relevance::applyCall(const simple::CallInfo &CI,
                          const simple::Reference *LhsRef) {
  bool Changed = false;
  std::set<int> RetVal;
  if (!CI.isIndirect()) {
    const FunctionIR *Callee = Prog.findFunction(CI.Callee);
    if (Callee && Callee->Body) {
      const std::vector<cf::VarDecl *> &Params = CI.Callee->params();
      for (size_t I = 0; I < Params.size() && I < CI.Args.size(); ++I)
        if (addAll(rootOf(Params[I]), operandValue(CI.Args[I])))
          Changed = true;
      int RV = rootOfRetval(CI.Callee);
      if (RV >= 0)
        RetVal = PTS[RV];
    } else if (CI.Callee) {
      // Extern model, mirrored from the analyzer: the strcpy family
      // returns (into) its first argument; everything else returning a
      // pointer is modeled as pointing to heap.
      if (pta::externCallModel(CI.Callee->name()) ==
              pta::ExternModel::ReturnsArg0 &&
          !CI.Args.empty())
        RetVal = operandValue(CI.Args[0]);
      else
        RetVal.insert(heapRoot());
    }
  }
  if (LhsRef && LhsRef->Base) {
    int B = rootOf(LhsRef->Base);
    if (B >= 0) {
      if (LhsRef->Deref) {
        for (int T : PTS[B])
          if (addAll(T, RetVal))
            Changed = true;
      } else if (addAll(B, RetVal)) {
        Changed = true;
      }
    }
  }
  return Changed;
}

bool Relevance::applyStmt(const simple::Stmt *S,
                          const cf::FunctionDecl *Owner) {
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = castStmt<AssignStmt>(S);
    if (A->RK == AssignStmt::RhsKind::Call)
      return applyCall(A->Call, &A->Lhs);
    std::set<int> Val;
    switch (A->RK) {
    case AssignStmt::RhsKind::Operand:
    case AssignStmt::RhsKind::Unary:
      Val = operandValue(A->A);
      break;
    case AssignStmt::RhsKind::Binary: {
      Val = operandValue(A->A);
      std::set<int> V2 = operandValue(A->B);
      Val.insert(V2.begin(), V2.end());
      break;
    }
    case AssignStmt::RhsKind::Alloc:
      Val.insert(heapRoot());
      break;
    case AssignStmt::RhsKind::Call:
      break; // handled above
    }
    if (!A->Lhs.Base)
      return false;
    int B = rootOf(A->Lhs.Base);
    if (B < 0)
      return false;
    if (A->Lhs.Deref) {
      bool Changed = false;
      for (int T : PTS[B])
        if (addAll(T, Val))
          Changed = true;
      return Changed;
    }
    return addAll(B, Val);
  }
  case Stmt::Kind::Call:
    return applyCall(castStmt<CallStmt>(S)->Call, nullptr);
  case Stmt::Kind::Return: {
    const auto *R = castStmt<ReturnStmt>(S);
    if (!R->Value || !Owner)
      return false;
    return addAll(rootOfRetval(Owner), operandValue(*R->Value));
  }
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

std::vector<uint8_t>
Relevance::reachClosure(const std::vector<int> &Seeds) const {
  std::vector<uint8_t> In(PTS.size(), 0);
  std::deque<int> Work;
  for (int S : Seeds)
    if (S >= 0 && S < static_cast<int>(PTS.size()) && !In[S]) {
      In[S] = 1;
      Work.push_back(S);
    }
  while (!Work.empty()) {
    int R = Work.front();
    Work.pop_front();
    for (int T : PTS[R])
      if (!In[T]) {
        In[T] = 1;
        Work.push_back(T);
      }
  }
  return In;
}

Relevance::Liveness
Relevance::liveness(const std::vector<int> &SeedRoots) const {
  Liveness Out;
  Out.LiveStmts.assign(Prog.numStmts(), 1);

  std::vector<uint8_t> Rel(PTS.size(), 0);
  for (int S : SeedRoots)
    if (S >= 0 && S < static_cast<int>(PTS.size()))
      Rel[S] = 1;

  std::vector<uint8_t> Live(Facts.size(), 0);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Facts.size(); ++I) {
      if (Live[I])
        continue;
      const StmtFacts &F = Facts[I];
      bool Fire = F.AlwaysLive;
      if (!Fire)
        for (int W : F.Writes)
          if (Rel[W]) {
            Fire = true;
            break;
          }
      if (!Fire)
        continue;
      Live[I] = 1;
      Changed = true;
      for (int R : F.Reads)
        if (!Rel[R])
          Rel[R] = 1;
    }
  }

  Out.SliceBasic = Facts.size();
  for (size_t I = 0; I < Facts.size(); ++I) {
    if (Live[I]) {
      ++Out.LiveBasic;
      if (Facts[I].IsBodyCall)
        Out.AnyLiveCall = true;
    } else {
      Out.LiveStmts[Facts[I].StmtId] = 0;
    }
  }
  return Out;
}

Relevance::Stats Relevance::stats() const {
  Stats S;
  S.Roots = PTS.size();
  S.Passes = Passes;
  for (const std::set<int> &P : PTS)
    S.Edges += P.size();
  return S;
}

} // namespace demand
} // namespace mcpta
