//===- DemandQuery.h - Demand-driven points-to queries ----------*- C++ -*-===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demand-driven query engine: answers a single `points_to` or
/// `alias` question about main's final points-to state without running
/// the full exhaustive analysis. The third rung of the ROADMAP's
/// exhaustive / summary / demand strategy ladder.
///
/// Strategy: a query names one or two access-path roots. The engine
/// seeds the Relevance pre-pass's liveness fixpoint with those roots,
/// obtains a live-statement filter over main's body + the global
/// initializers, and runs the ordinary context-sensitive analyzer
/// (pta::Analyzer) with Options::LiveStmts installed — skipped
/// statements become identity transfers, and a skipped call skips its
/// entire invocation subtree. The projection of the result onto the
/// query's roots is *exactly* the exhaustive projection (docs/DEMAND.md
/// has the argument), so the answer is byte-equal to the exhaustive
/// answer — never approximate.
///
/// When a query (or program) escapes the engine's exactness envelope it
/// *falls back* to the exhaustive engine with a recorded reason
/// (Answer::FallbackReason, surfaced as `demand.fallback.<reason>`
/// serve counters):
///   - "no-main"         program has no defined main
///   - "fnptr"           any indirect call site (Figure 5 IG growth can
///                       bind callees the static slice cannot see)
///   - "recursion"       direct-call cycle reachable from main (the
///                       pending-list approximation's trajectory is not
///                       projection-local)
///   - "options"         non-default analyzer semantics requested
///                       (context-insensitive or fnptr-mode ablations,
///                       incremental seeding)
///   - "stmt-scope"      points_to at a specific statement (needs
///                       RecordStmtSets, i.e. every statement visited)
///   - "unresolved-name" query names no program variable (compound
///                       paths, symbolics, heap/NULL, bad syntax)
///   - "ambiguous-name"  display name matches several variables (or a
///                       variable and a function) program-wide
///   - "not-main-scope"  a unique variable, but local to another
///                       function (demand answers about main's frame
///                       and globals)
///   - "unmentioned"     the pruned run's result never mentions the
///                       queried location (the exhaustive location
///                       table may still know it via statement sets)
///   - "degraded"        the pruned run tripped a resource budget
///
//===----------------------------------------------------------------------===//

#ifndef MCPTA_DEMAND_DEMANDQUERY_H
#define MCPTA_DEMAND_DEMANDQUERY_H

#include "demand/Relevance.h"
#include "pointsto/Analyzer.h"
#include "serve/Serialize.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mcpta {
namespace demand {

/// One demand question about main's final points-to state.
struct Query {
  enum class Kind { PointsTo, Alias };
  Kind K = Kind::PointsTo;

  /// PointsTo: a location display name (demand resolves plain variable
  /// names; anything else falls back).
  std::string Name;
  /// PointsTo: statement scope; >= 0 falls back ("stmt-scope").
  int64_t StmtId = -1;

  /// Alias: two access-path expressions in the alias-pair vocabulary —
  /// zero or more '*' prefixes on a variable name (e.g. "p", "*p",
  /// "**q").
  std::string A, B;

  static Query pointsTo(std::string Name, int64_t StmtId = -1) {
    Query Q;
    Q.K = Kind::PointsTo;
    Q.Name = std::move(Name);
    Q.StmtId = StmtId;
    return Q;
  }
  static Query alias(std::string A, std::string B) {
    Query Q;
    Q.K = Kind::Alias;
    Q.A = std::move(A);
    Q.B = std::move(B);
    return Q;
  }
};

struct DemandOptions {
  /// Analyzer configuration for both the pruned run and the exhaustive
  /// fallback. The demand run itself always forces RecordStmtSets=false
  /// and Seeder=nullptr; Telem (when set) receives the pruned run's
  /// pta.* counters merged in. Non-default FnPtr/ContextSensitive
  /// settings gate every query to the fallback ("options").
  pta::Analyzer::Options Analyzer;
  /// When true (default), a fallback runs the exhaustive analysis and
  /// answers from it (Strategy="exhaustive"). When false, the caller
  /// already holds an exhaustive result and only wants the reason
  /// (serve answers from its snapshot cache).
  bool RunExhaustiveOnFallback = true;
};

/// The outcome of one query.
struct Answer {
  /// False only on an unanswered fallback (RunExhaustiveOnFallback off)
  /// or an exhaustive-side error (unknown location).
  bool Ok = false;
  std::string Error;
  /// "demand" or "exhaustive" (empty when unanswered).
  std::string Strategy;
  /// Empty for a demand answer; the gate that fired otherwise.
  std::string FallbackReason;

  /// Alias payload.
  bool Aliased = false;
  /// PointsTo payload: (target display name, definite) in canonical
  /// order — byte-equal to the exhaustive answer.
  std::vector<std::pair<std::string, bool>> Targets;

  /// Pruned-run statistics (zero for fallback/trivial answers):
  /// statements the analyzer visited / skipped (pta.stmt_visits /
  /// pta.stmt_skips of the pruned run), and the liveness pass's view of
  /// the pruned region.
  uint64_t VisitedStmts = 0;
  uint64_t SkippedStmts = 0;
  uint64_t SliceBasic = 0;
  uint64_t LiveBasic = 0;

  bool answeredByDemand() const { return Ok && Strategy == "demand"; }
};

/// Per-program query engine. Builds its gates eagerly (cheap scans) and
/// the Relevance solution lazily on the first non-gated query; both are
/// reused across queries, as is the exhaustive fallback snapshot, so a
/// query burst against one program pays each cost once. Not thread-safe;
/// serve constructs one per request.
class DemandEngine {
public:
  /// \p Prog must outlive the engine.
  DemandEngine(const simple::Program &Prog, DemandOptions Opts);
  ~DemandEngine();

  Answer query(const Query &Q);

  /// The whole-program gate ("" when demand can run): "no-main",
  /// "options", "fnptr", or "recursion".
  const std::string &programGate() const { return ProgramGate; }

  /// The exhaustive result, run on first use and cached (also used by
  /// fallbacks). Never null; Analyzed=0 inside when the program has no
  /// main.
  const serve::ResultSnapshot &exhaustiveSnapshot();

  /// Relevance statistics (zeros until the first non-gated query forces
  /// the build).
  Relevance::Stats relevanceStats() const;

private:
  Answer fallback(const Query &Q, const std::string &Reason);
  /// Answers \p Q from \p S (demand or exhaustive snapshot alike).
  void answerFrom(const Query &Q, const serve::ResultSnapshot &S, Answer &A);
  /// Resolves a plain variable name to a relevance root; on failure
  /// returns -1 with the gate reason in \p GateOut.
  int resolveRoot(const std::string &Name, std::string &GateOut);
  const Relevance &relevance();

  const simple::Program &Prog;
  DemandOptions Opts;
  std::string ProgramGate;
  const simple::FunctionIR *Main = nullptr;
  std::unique_ptr<Relevance> Rel;
  std::unique_ptr<serve::ResultSnapshot> Exh;
  /// Display name -> every VarDecl carrying it, program-wide (globals,
  /// params, locals, temps). >1 entry = ambiguous.
  std::map<std::string, std::vector<const cfront::VarDecl *>> VarsByName;
  std::set<std::string> FunctionNames;
};

/// Splits an alias-side expression into (star count, base name).
/// Returns star count -1 when the expression is not `'*'* identifier`.
std::pair<int, std::string> parseAliasExpr(const std::string &Expr);

} // namespace demand
} // namespace mcpta

#endif // MCPTA_DEMAND_DEMANDQUERY_H
