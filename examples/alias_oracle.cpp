//===- alias_oracle.cpp - answering alias queries over a C program -------------===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
// Uses the analysis as a downstream tool would (the paper's Sec. 6.1
// applications): ask "may these two expressions alias?" and "what may
// this pointer point to?" over a linked-list workload, and generate the
// traditional alias pairs (Sec. 7.1) from the points-to abstraction.
//
//===----------------------------------------------------------------------===//

#include "clients/AliasPairs.h"
#include "driver/Pipeline.h"

#include <cstdio>

static const char *const Source = R"C(
void *malloc(int n);

struct Node {
  int value;
  struct Node *next;
};

struct Node *freeList;

struct Node *newNode(int v) {
  struct Node *n;
  if (freeList != NULL) {
    n = freeList;
    freeList = n->next;
  } else {
    n = (struct Node *)malloc(16);
  }
  n->value = v;
  n->next = NULL;
  return n;
}

int main(void) {
  struct Node *head;
  struct Node *tail;
  struct Node *cursor;
  int sum;
  int i;

  freeList = NULL;
  head = newNode(0);
  tail = head;
  for (i = 1; i < 5; i++) {
    tail->next = newNode(i);
    tail = tail->next;
  }

  sum = 0;
  cursor = head;
  while (cursor != NULL) {
    sum = sum + cursor->value;
    cursor = cursor->next;
  }
  return sum;
}
)C";

int main() {
  using namespace mcpta;

  Pipeline P = Pipeline::analyzeSource(Source);
  if (!P.ok()) {
    std::fputs(P.Diags.dump().c_str(), stderr);
    return 1;
  }
  const pta::PointsToSet &Final = *P.Analysis.MainOut;
  pta::LocationTable &Locs = *P.Analysis.Locs;

  std::puts("=== Points-to set at end of main ===");
  std::printf("%s\n", Final.str(Locs).c_str());

  // "What may this pointer point to?" — the direct query downstream
  // analyses (dependence testing, read/write sets) ask constantly.
  std::puts("\n=== Pointer target queries ===");
  for (const char *Var : {"head", "tail", "cursor", "freeList"}) {
    const cfront::VarDecl *Found = nullptr;
    for (const auto &F : P.Prog->functions())
      for (const auto *L : F.Locals)
        if (L->name() == Var)
          Found = L;
    for (const auto *G : P.Prog->globals())
      if (G->name() == Var)
        Found = G;
    if (!Found)
      continue;
    std::printf("%-9s -> {", Var);
    bool First = true;
    for (const auto &T : Final.targetsOf(Locs.varLoc(Found), Locs)) {
      std::printf("%s%s:%c", First ? "" : ", ", T.Loc->str().c_str(),
                  T.D == pta::Def::D ? 'D' : 'P');
      First = false;
    }
    std::puts("}");
  }

  // Traditional alias pairs generated from the points-to abstraction.
  auto Pairs = clients::aliasPairs(Final, Locs, 2);
  std::printf("\n=== Alias pairs implied (depth 2): %zu ===\n",
              Pairs.size());
  for (const auto &[A, B] : Pairs)
    std::printf("  (%s, %s)\n", A.c_str(), B.c_str());

  std::puts("\n=== Sample may-alias queries ===");
  auto Query = [&](const char *A, const char *B) {
    std::printf("may-alias(%-8s, %-8s) = %s\n", A, B,
                clients::hasAlias(Pairs, A, B) ? "yes" : "no");
  };
  Query("*head", "*tail");
  Query("*head", "*cursor");
  Query("*head", "sum");
  return 0;
}
