//===- quickstart.cpp - smallest end-to-end mcpta example ----------------------===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
// Analyzes a small C program and prints:
//   - the SIMPLE lowering,
//   - the invocation graph,
//   - the points-to set at the end of main,
//   - the per-indirect-reference statistics (Table 3 style).
//
//===----------------------------------------------------------------------===//

#include "clients/IndirectRefStats.h"
#include "driver/Pipeline.h"

#include <cstdio>

static const char *const Source = R"C(
int g;
int *gp;

void set(int **out, int *value) {
  *out = value;
}

int main(void) {
  int x;
  int *p;
  p = &x;
  set(&gp, &g);
  set(&p, gp);
  *p = 7;
  return *gp;
}
)C";

int main() {
  using namespace mcpta;

  Pipeline P = Pipeline::analyzeSource(Source);
  if (!P.ok()) {
    std::fputs(P.Diags.dump().c_str(), stderr);
    return 1;
  }

  std::puts("=== SIMPLE ===");
  std::fputs(P.Prog->str().c_str(), stdout);

  std::puts("\n=== Invocation graph ===");
  std::fputs(P.Analysis.IG->str().c_str(), stdout);

  std::puts("\n=== Points-to set at end of main ===");
  std::printf("%s\n", P.Analysis.MainOut->str(*P.Analysis.Locs).c_str());

  auto Stats = clients::IndirectRefAnalysis::compute(*P.Prog, P.Analysis);
  std::puts("\n=== Indirect reference statistics ===");
  std::printf("indirect refs: %u, definite single: %u, avg targets: %.2f\n",
              Stats.Stats.IndirectRefs, Stats.Stats.OneD.total(),
              Stats.Stats.average());
  return 0;
}
