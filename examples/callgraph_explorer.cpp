//===- callgraph_explorer.cpp - function pointers & invocation graphs ----------===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
// Demonstrates the Sec. 5 algorithm on an interpreter-style dispatch
// loop (the kind of code where naive call-graph construction drowns):
// an opcode table of function pointers, resolved precisely from the
// points-to analysis, compared against the two naive instantiation
// strategies the paper discusses.
//
//===----------------------------------------------------------------------===//

#include "clients/CallGraphBaselines.h"
#include "clients/ReadWriteSets.h"
#include "driver/Pipeline.h"

#include <cstdio>

static const char *const Source = R"C(
int stack[64];
int sp;

void opPush(int v) { stack[sp] = v; sp = sp + 1; }
void opAdd(int v)  { sp = sp - 1; stack[sp - 1] = stack[sp - 1] + stack[sp]; }
void opMul(int v)  { sp = sp - 1; stack[sp - 1] = stack[sp - 1] * stack[sp]; }
void opNeg(int v)  { stack[sp - 1] = -stack[sp - 1]; }

/* helpers whose addresses are never taken */
void reset(void) { sp = 0; }
int top(void) { return stack[sp - 1]; }

void (*optable[4])(int) = {opPush, opAdd, opMul, opNeg};

int program[7] = {0, 0, 1, 0, 2, 3, -1};
int operands[7] = {2, 3, 0, 4, 0, 0, 0};

int main(void) {
  int pc;
  void (*op)(int);
  reset();
  for (pc = 0; pc < 7; pc++) {
    if (program[pc] < 0)
      break;
    op = optable[program[pc]];
    op(operands[pc]);
  }
  return top();
}
)C";

int main() {
  using namespace mcpta;

  Pipeline P = Pipeline::analyzeSource(Source);
  if (!P.ok()) {
    std::fputs(P.Diags.dump().c_str(), stderr);
    return 1;
  }

  std::puts("=== Invocation graph (function pointers resolved by "
            "points-to analysis) ===");
  std::fputs(P.Analysis.IG->str().c_str(), stdout);

  auto Cmp = clients::CallGraphComparison::compute(*P.Prog);
  std::puts("\n=== Instantiation strategy comparison (Sec. 5) ===");
  std::printf("precise (Figure 5):      %u nodes\n", Cmp.PreciseNodes);
  std::printf("address-taken baseline:  %u nodes\n",
              Cmp.AddressTakenNodes);
  std::printf("all-functions baseline:  %u nodes\n",
              Cmp.AllFunctionsNodes);

  std::puts("\n=== Per-function side-effect sets (Sec. 6.1 application) "
            "===");
  auto RW = clients::ReadWriteSets::compute(*P.Prog, P.Analysis);
  for (const auto &[Fn, Writes] : RW.Writes) {
    std::printf("%-8s writes {", Fn.c_str());
    bool First = true;
    for (const std::string &W : Writes) {
      std::printf("%s%s", First ? "" : ", ", W.c_str());
      First = false;
    }
    std::puts("}");
  }
  return 0;
}
