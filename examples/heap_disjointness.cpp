//===- heap_disjointness.cpp - proving heap structures disjoint ----------------===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
// Demonstrates the Sec. 8 future-work extension implemented in
// src/heap/: connection matrices over heap-directed pointers. The
// points-to analysis collapses all heap storage into one summary
// location (its deliberate stack/heap decoupling); the connection
// analysis recovers structure-level disjointness — here, that two
// independently built lists can be processed in parallel while a third
// pointer aliases into the first.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "heap/ConnectionAnalysis.h"

#include <cstdio>

static const char *const Source = R"C(
void *malloc(int n);

struct Node { struct Node *next; int v; };

int main(void) {
  struct Node *inbox;
  struct Node *outbox;
  struct Node *scan;
  struct Node *t;
  int i;

  inbox = NULL;
  for (i = 0; i < 4; i++) {
    t = (struct Node *)malloc(16);
    t->v = i;
    t->next = inbox;
    inbox = t;
  }

  outbox = NULL;
  for (i = 0; i < 4; i++) {
    t = (struct Node *)malloc(16);
    t->v = -i;
    t->next = outbox;
    outbox = t;
  }

  scan = inbox; /* aliases into the first structure */
  while (scan != NULL)
    scan = scan->next;
  return 0;
}
)C";

int main() {
  using namespace mcpta;

  Pipeline P = Pipeline::analyzeSource(Source);
  if (!P.ok()) {
    std::fputs(P.Diags.dump().c_str(), stderr);
    return 1;
  }

  std::puts("=== Points-to view (one heap summary; Sec. 7.1) ===");
  std::printf("%s\n", P.Analysis.MainOut->str(*P.Analysis.Locs).c_str());

  auto Conn = heap::runConnectionAnalysis(*P.Prog, P.Analysis);
  const cfront::FunctionDecl *Main = P.Unit->findFunction("main");
  const heap::ConnectionMatrix *M = Conn.matrixOf(Main);

  std::puts("\n=== Connection matrix at end of main (Sec. 8 extension) "
            "===");
  std::printf("%s\n", M->str().c_str());

  auto Var = [&](const char *Name) -> const cfront::VarDecl * {
    for (const auto &F : P.Prog->functions())
      if (F.Decl == Main)
        for (const auto *L : F.Locals)
          if (L->name() == Name)
            return L;
    return nullptr;
  };
  auto Query = [&](const char *A, const char *B) {
    std::printf("connected(%-7s, %-7s) = %s\n", A, B,
                M->connected(Var(A), Var(B)) ? "maybe" : "no");
  };
  std::puts("\n=== Disjointness queries ===");
  Query("inbox", "outbox");
  Query("inbox", "scan");
  Query("outbox", "scan");
  std::puts("\ninbox and outbox are provably disjoint structures: a "
            "parallelizing\ntransformation may process them "
            "concurrently.");
  return 0;
}
