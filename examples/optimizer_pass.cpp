//===- optimizer_pass.cpp - pointer replacement as a compiler pass -------------===//
//
// Part of the mcpta project (PLDI'94 points-to analysis reproduction).
//
// Demonstrates the paper's Sec. 1 motivating transformation: using
// definite points-to information to replace indirect references with
// direct ones ("given x = *q and q definitely points-to y, replace the
// statement with x = y"), the enabling step for load/store reduction in
// a compiler back end [12].
//
// The example program funnels all stores through pointer indirections
// that are nevertheless definite; the pass rewrites them and the
// concrete interpreter verifies behavior is preserved.
//
//===----------------------------------------------------------------------===//

#include "clients/PointerReplace.h"
#include "driver/Pipeline.h"
#include "interp/Interpreter.h"

#include <cstdio>

static const char *const Source = R"C(
int total;

void accumulate(int *sum, int *value) {
  *sum = *sum + *value;
}

int main(void) {
  int item;
  int *cursor;
  int i;
  cursor = &item;
  total = 0;
  for (i = 1; i <= 5; i++) {
    *cursor = i * i;
    accumulate(&total, cursor);
  }
  return total;
}
)C";

int main() {
  using namespace mcpta;

  Pipeline P = Pipeline::analyzeSource(Source);
  if (!P.ok()) {
    std::fputs(P.Diags.dump().c_str(), stderr);
    return 1;
  }

  std::puts("=== SIMPLE before pointer replacement ===");
  std::fputs(P.Prog->str().c_str(), stdout);

  // Baseline behavior.
  interp::RunResult Before = interp::run(*P.Prog);
  std::printf("\nprogram result before pass: %lld\n", Before.ExitValue);

  // The pass: rewrite indirect references with a definite single
  // visible target.
  auto R = clients::replacePointers(*P.Prog, P.Analysis);
  std::printf("\npointer replacement: %u of %u indirect references "
              "rewritten\n",
              R.Replaced, R.Candidates);

  std::puts("\n=== SIMPLE after pointer replacement ===");
  std::fputs(P.Prog->str().c_str(), stdout);

  interp::RunResult After = interp::run(*P.Prog);
  std::printf("\nprogram result after pass:  %lld (%s)\n", After.ExitValue,
              After.ExitValue == Before.ExitValue ? "behavior preserved"
                                                  : "MISCOMPILED!");
  return After.ExitValue == Before.ExitValue ? 0 : 1;
}
