# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.alias_oracle "/root/repo/build/examples/alias_oracle")
set_tests_properties(example.alias_oracle PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.callgraph_explorer "/root/repo/build/examples/callgraph_explorer")
set_tests_properties(example.callgraph_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.heap_disjointness "/root/repo/build/examples/heap_disjointness")
set_tests_properties(example.heap_disjointness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.optimizer_pass "/root/repo/build/examples/optimizer_pass")
set_tests_properties(example.optimizer_pass PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
