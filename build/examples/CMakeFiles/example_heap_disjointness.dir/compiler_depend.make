# Empty compiler generated dependencies file for example_heap_disjointness.
# This may be replaced when dependencies are built.
