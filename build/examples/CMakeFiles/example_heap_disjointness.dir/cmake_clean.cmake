file(REMOVE_RECURSE
  "CMakeFiles/example_heap_disjointness.dir/heap_disjointness.cpp.o"
  "CMakeFiles/example_heap_disjointness.dir/heap_disjointness.cpp.o.d"
  "heap_disjointness"
  "heap_disjointness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heap_disjointness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
