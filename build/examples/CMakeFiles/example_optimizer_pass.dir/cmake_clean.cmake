file(REMOVE_RECURSE
  "CMakeFiles/example_optimizer_pass.dir/optimizer_pass.cpp.o"
  "CMakeFiles/example_optimizer_pass.dir/optimizer_pass.cpp.o.d"
  "optimizer_pass"
  "optimizer_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_optimizer_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
