# Empty dependencies file for example_optimizer_pass.
# This may be replaced when dependencies are built.
