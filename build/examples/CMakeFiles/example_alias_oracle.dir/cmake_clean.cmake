file(REMOVE_RECURSE
  "CMakeFiles/example_alias_oracle.dir/alias_oracle.cpp.o"
  "CMakeFiles/example_alias_oracle.dir/alias_oracle.cpp.o.d"
  "alias_oracle"
  "alias_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_alias_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
