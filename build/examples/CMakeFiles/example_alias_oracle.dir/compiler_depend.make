# Empty compiler generated dependencies file for example_alias_oracle.
# This may be replaced when dependencies are built.
