# Empty dependencies file for example_callgraph_explorer.
# This may be replaced when dependencies are built.
