file(REMOVE_RECURSE
  "CMakeFiles/example_callgraph_explorer.dir/callgraph_explorer.cpp.o"
  "CMakeFiles/example_callgraph_explorer.dir/callgraph_explorer.cpp.o.d"
  "callgraph_explorer"
  "callgraph_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_callgraph_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
