# Empty compiler generated dependencies file for mcpta-tests.
# This may be replaced when dependencies are built.
