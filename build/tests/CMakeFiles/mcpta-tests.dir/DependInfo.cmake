
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AblationSoundnessTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/AblationSoundnessTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/AblationSoundnessTest.cpp.o.d"
  "/root/repo/tests/AliasPairsTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/AliasPairsTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/AliasPairsTest.cpp.o.d"
  "/root/repo/tests/AnalyzerOptionsTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/AnalyzerOptionsTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/AnalyzerOptionsTest.cpp.o.d"
  "/root/repo/tests/BaselinesTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/BaselinesTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/BaselinesTest.cpp.o.d"
  "/root/repo/tests/BasicRulesTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/BasicRulesTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/BasicRulesTest.cpp.o.d"
  "/root/repo/tests/ConnectionAnalysisTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/ConnectionAnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/ConnectionAnalysisTest.cpp.o.d"
  "/root/repo/tests/ControlFlowTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/ControlFlowTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/ControlFlowTest.cpp.o.d"
  "/root/repo/tests/CorpusTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/CorpusTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/CorpusTest.cpp.o.d"
  "/root/repo/tests/DiagnosticsTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/DiagnosticsTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/DiagnosticsTest.cpp.o.d"
  "/root/repo/tests/EdgeCaseTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/EdgeCaseTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/EdgeCaseTest.cpp.o.d"
  "/root/repo/tests/FunctionPointerTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/FunctionPointerTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/FunctionPointerTest.cpp.o.d"
  "/root/repo/tests/InterpreterTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/InterpreterTest.cpp.o.d"
  "/root/repo/tests/InterproceduralTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/InterproceduralTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/InterproceduralTest.cpp.o.d"
  "/root/repo/tests/InvariantPropertyTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/InvariantPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/InvariantPropertyTest.cpp.o.d"
  "/root/repo/tests/InvocationGraphTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/InvocationGraphTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/InvocationGraphTest.cpp.o.d"
  "/root/repo/tests/LRLocationsTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/LRLocationsTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/LRLocationsTest.cpp.o.d"
  "/root/repo/tests/LexerTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/LexerTest.cpp.o.d"
  "/root/repo/tests/LocationTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/LocationTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/LocationTest.cpp.o.d"
  "/root/repo/tests/MapUnmapTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/MapUnmapTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/MapUnmapTest.cpp.o.d"
  "/root/repo/tests/ParserTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/PointerReplaceTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/PointerReplaceTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/PointerReplaceTest.cpp.o.d"
  "/root/repo/tests/PointsToSetTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/PointsToSetTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/PointsToSetTest.cpp.o.d"
  "/root/repo/tests/PrinterTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/PrinterTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/PrinterTest.cpp.o.d"
  "/root/repo/tests/ReadWriteSetsTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/ReadWriteSetsTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/ReadWriteSetsTest.cpp.o.d"
  "/root/repo/tests/RecursionTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/RecursionTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/RecursionTest.cpp.o.d"
  "/root/repo/tests/RobustnessTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/RobustnessTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/RobustnessTest.cpp.o.d"
  "/root/repo/tests/SimplifierTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/SimplifierTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/SimplifierTest.cpp.o.d"
  "/root/repo/tests/SoundnessPropertyTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/SoundnessPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/SoundnessPropertyTest.cpp.o.d"
  "/root/repo/tests/StatsTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/StatsTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/StatsTest.cpp.o.d"
  "/root/repo/tests/ToolTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/ToolTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/ToolTest.cpp.o.d"
  "/root/repo/tests/TypeTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/TypeTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/TypeTest.cpp.o.d"
  "/root/repo/tests/WorkloadGenTest.cpp" "tests/CMakeFiles/mcpta-tests.dir/WorkloadGenTest.cpp.o" "gcc" "tests/CMakeFiles/mcpta-tests.dir/WorkloadGenTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcpta.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
