file(REMOVE_RECURSE
  "CMakeFiles/bench_livc.dir/bench_livc.cpp.o"
  "CMakeFiles/bench_livc.dir/bench_livc.cpp.o.d"
  "bench_livc"
  "bench_livc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_livc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
