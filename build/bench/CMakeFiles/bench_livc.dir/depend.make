# Empty dependencies file for bench_livc.
# This may be replaced when dependencies are built.
