
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/Andersen.cpp" "src/CMakeFiles/mcpta.dir/baselines/Andersen.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/baselines/Andersen.cpp.o.d"
  "/root/repo/src/baselines/ContextInsensitive.cpp" "src/CMakeFiles/mcpta.dir/baselines/ContextInsensitive.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/baselines/ContextInsensitive.cpp.o.d"
  "/root/repo/src/cfront/AST.cpp" "src/CMakeFiles/mcpta.dir/cfront/AST.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/cfront/AST.cpp.o.d"
  "/root/repo/src/cfront/Lexer.cpp" "src/CMakeFiles/mcpta.dir/cfront/Lexer.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/cfront/Lexer.cpp.o.d"
  "/root/repo/src/cfront/Parser.cpp" "src/CMakeFiles/mcpta.dir/cfront/Parser.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/cfront/Parser.cpp.o.d"
  "/root/repo/src/cfront/Type.cpp" "src/CMakeFiles/mcpta.dir/cfront/Type.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/cfront/Type.cpp.o.d"
  "/root/repo/src/clients/AliasPairs.cpp" "src/CMakeFiles/mcpta.dir/clients/AliasPairs.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/clients/AliasPairs.cpp.o.d"
  "/root/repo/src/clients/CallGraphBaselines.cpp" "src/CMakeFiles/mcpta.dir/clients/CallGraphBaselines.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/clients/CallGraphBaselines.cpp.o.d"
  "/root/repo/src/clients/GeneralStats.cpp" "src/CMakeFiles/mcpta.dir/clients/GeneralStats.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/clients/GeneralStats.cpp.o.d"
  "/root/repo/src/clients/IGStats.cpp" "src/CMakeFiles/mcpta.dir/clients/IGStats.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/clients/IGStats.cpp.o.d"
  "/root/repo/src/clients/IndirectRefStats.cpp" "src/CMakeFiles/mcpta.dir/clients/IndirectRefStats.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/clients/IndirectRefStats.cpp.o.d"
  "/root/repo/src/clients/PointerReplace.cpp" "src/CMakeFiles/mcpta.dir/clients/PointerReplace.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/clients/PointerReplace.cpp.o.d"
  "/root/repo/src/clients/ReadWriteSets.cpp" "src/CMakeFiles/mcpta.dir/clients/ReadWriteSets.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/clients/ReadWriteSets.cpp.o.d"
  "/root/repo/src/corpus/Corpus.cpp" "src/CMakeFiles/mcpta.dir/corpus/Corpus.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/corpus/Corpus.cpp.o.d"
  "/root/repo/src/driver/Pipeline.cpp" "src/CMakeFiles/mcpta.dir/driver/Pipeline.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/driver/Pipeline.cpp.o.d"
  "/root/repo/src/heap/ConnectionAnalysis.cpp" "src/CMakeFiles/mcpta.dir/heap/ConnectionAnalysis.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/heap/ConnectionAnalysis.cpp.o.d"
  "/root/repo/src/ig/InvocationGraph.cpp" "src/CMakeFiles/mcpta.dir/ig/InvocationGraph.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/ig/InvocationGraph.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/mcpta.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/pointsto/Analyzer.cpp" "src/CMakeFiles/mcpta.dir/pointsto/Analyzer.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/pointsto/Analyzer.cpp.o.d"
  "/root/repo/src/pointsto/LRLocations.cpp" "src/CMakeFiles/mcpta.dir/pointsto/LRLocations.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/pointsto/LRLocations.cpp.o.d"
  "/root/repo/src/pointsto/Location.cpp" "src/CMakeFiles/mcpta.dir/pointsto/Location.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/pointsto/Location.cpp.o.d"
  "/root/repo/src/pointsto/MapUnmap.cpp" "src/CMakeFiles/mcpta.dir/pointsto/MapUnmap.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/pointsto/MapUnmap.cpp.o.d"
  "/root/repo/src/pointsto/PointsToSet.cpp" "src/CMakeFiles/mcpta.dir/pointsto/PointsToSet.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/pointsto/PointsToSet.cpp.o.d"
  "/root/repo/src/simple/SimpleIR.cpp" "src/CMakeFiles/mcpta.dir/simple/SimpleIR.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/simple/SimpleIR.cpp.o.d"
  "/root/repo/src/simple/Simplifier.cpp" "src/CMakeFiles/mcpta.dir/simple/Simplifier.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/simple/Simplifier.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/mcpta.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/support/Diagnostics.cpp.o.d"
  "/root/repo/src/wlgen/WorkloadGen.cpp" "src/CMakeFiles/mcpta.dir/wlgen/WorkloadGen.cpp.o" "gcc" "src/CMakeFiles/mcpta.dir/wlgen/WorkloadGen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
