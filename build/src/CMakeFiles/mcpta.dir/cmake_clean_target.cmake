file(REMOVE_RECURSE
  "libmcpta.a"
)
