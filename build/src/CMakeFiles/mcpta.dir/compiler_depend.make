# Empty compiler generated dependencies file for mcpta.
# This may be replaced when dependencies are built.
