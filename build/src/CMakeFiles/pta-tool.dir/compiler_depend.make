# Empty compiler generated dependencies file for pta-tool.
# This may be replaced when dependencies are built.
