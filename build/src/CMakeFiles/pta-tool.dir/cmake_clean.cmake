file(REMOVE_RECURSE
  "CMakeFiles/pta-tool.dir/driver/ToolMain.cpp.o"
  "CMakeFiles/pta-tool.dir/driver/ToolMain.cpp.o.d"
  "pta-tool"
  "pta-tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta-tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
